//! Full-stack scheduler differential: a complete FTGCS scenario —
//! cluster sync, estimators, triggers, Byzantine faults — produces
//! **byte-identical** traces whether the engine runs one global heap,
//! one shard per cluster, or the parallel executor on any worker
//! count.
//!
//! The substrate-level matrix lives in
//! `crates/sim/tests/shard_equivalence.rs`; this test adds the layers
//! above the engine: every message class of the algorithm, fault
//! behaviors, and the max estimator.

use ftgcs::cluster::cluster_partition;
use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_sim::shard::SchedulerKind;
use ftgcs_topology::{generators, ClusterGraph};

fn scenario(seed: u64, faulty: bool) -> Scenario {
    let params = Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible environment");
    let cg = ClusterGraph::new(generators::line(3), 4, 1);
    let mut s = Scenario::new(cg, params);
    s.seed(seed).initial_offset_spread(1e-4);
    if faulty {
        s.with_fault_per_cluster(&FaultKind::TwoFaced { amplitude: 1e-3 }, 1);
    }
    s
}

#[test]
fn sharded_by_cluster_matches_global_heap_byte_for_byte() {
    for seed in [7u64, 23] {
        for faulty in [false, true] {
            let mut s = scenario(seed, faulty);
            s.sharded_by_cluster();
            let sharded = s.run_for(20.0);
            let mut g = scenario(seed, faulty);
            g.scheduler(SchedulerKind::Global);
            let global = g.run_for(20.0);
            assert!(
                !sharded.trace.samples.is_empty() && !sharded.trace.rows.is_empty(),
                "trace must be non-trivial"
            );
            assert_eq!(sharded.stats, global.stats, "seed {seed}, faulty {faulty}");
            assert_eq!(
                sharded.trace.to_bytes(),
                global.trace.to_bytes(),
                "scheduler changed a full-stack run (seed {seed}, faulty {faulty})"
            );
        }
    }
}

#[test]
fn parallel_executor_matches_global_heap_byte_for_byte() {
    // The Byzantine axis matters: fault behaviors read Newtonian time
    // and drive the per-node RNG differently from correct nodes, so
    // they exercise every determinism ingredient of the parallel
    // executor at full stack depth.
    for faulty in [false, true] {
        let mut g = scenario(23, faulty);
        g.scheduler(SchedulerKind::Global);
        let global = g.run_for(10.0);
        assert!(
            !global.trace.samples.is_empty() && !global.trace.rows.is_empty(),
            "trace must be non-trivial"
        );
        for workers in [1usize, 2, 4, 0] {
            let mut s = scenario(23, faulty);
            s.parallel(workers);
            let parallel = s.run_for(10.0);
            assert_eq!(
                parallel.stats, global.stats,
                "faulty {faulty}, workers {workers}: work counters diverged"
            );
            assert!(
                parallel.trace.byte_identical(&global.trace),
                "parallel run diverged from the global heap \
                 (faulty {faulty}, workers {workers})"
            );
        }
    }
}

#[test]
fn explicit_cluster_partition_matches_sharded_by_cluster() {
    // `scheduler(Sharded(cluster_partition(..)))` is exactly what the
    // `sharded_by_cluster` convenience selects; handing the partition
    // down explicitly must be a no-op.
    let mut base = scenario(5, false);
    base.sharded_by_cluster();
    let base = base.run_for(10.0);
    let mut explicit = scenario(5, false);
    let partition = cluster_partition(explicit.cluster_graph());
    explicit.scheduler(SchedulerKind::Sharded(partition));
    let run = explicit.run_for(10.0);
    assert_eq!(base.trace.to_bytes(), run.trace.to_bytes());
}
