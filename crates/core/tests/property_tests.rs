//! Property-based tests (proptest) of the core invariants: trimmed
//! midpoints (Dolev et al. [6] validity), trigger exclusivity (Lemma 4.5),
//! parameter-derivation monotonicity, clock-track algebra, and graph
//! augmentation arithmetic.

use ftgcs::agreement::trimmed_midpoint;
use ftgcs::params::Params;
use ftgcs::triggers::{conditions, evaluate};
use ftgcs_sim::clock::{HardwareClock, RateModel};
use ftgcs_sim::rng::SimRng;
use ftgcs_sim::time::SimTime;
use ftgcs_topology::generators::line;
use ftgcs_topology::ClusterGraph;
use proptest::prelude::*;

proptest! {
    /// Validity: with at most `f` arbitrary entries among `3f+1`, the
    /// trimmed midpoint stays inside the correct entries' range.
    #[test]
    fn trimmed_midpoint_validity(
        f in 1usize..4,
        correct_seed in 0u64..1000,
        byz in prop::collection::vec(-1e6f64..1e6, 0..3),
    ) {
        prop_assume!(byz.len() <= f);
        let k = 3 * f + 1;
        let mut rng = SimRng::seed_from(correct_seed);
        let n_correct = k - byz.len();
        let correct: Vec<f64> = (0..n_correct).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let lo = correct.iter().cloned().fold(f64::MAX, f64::min);
        let hi = correct.iter().cloned().fold(f64::MIN, f64::max);
        let mut all = correct.clone();
        all.extend_from_slice(&byz);
        let m = trimmed_midpoint(&all, f).unwrap();
        prop_assert!(m.delta >= lo - 1e-12 && m.delta <= hi + 1e-12,
            "delta {} outside correct range [{lo}, {hi}]", m.delta);
    }

    /// Agreement-ish contraction: two nodes observing the same correct
    /// values but different Byzantine lies compute midpoints within the
    /// correct spread of each other.
    #[test]
    fn trimmed_midpoint_outputs_close_across_receivers(
        seed in 0u64..500,
        lie_a in -1e3f64..1e3,
        lie_b in -1e3f64..1e3,
    ) {
        let f = 1;
        let mut rng = SimRng::seed_from(seed);
        let correct: Vec<f64> = (0..3).map(|_| rng.uniform(0.0, 0.5)).collect();
        let spread = correct.iter().cloned().fold(f64::MIN, f64::max)
            - correct.iter().cloned().fold(f64::MAX, f64::min);
        let mut obs_a = correct.clone();
        obs_a.push(lie_a);
        let mut obs_b = correct;
        obs_b.push(lie_b);
        let da = trimmed_midpoint(&obs_a, f).unwrap().delta;
        let db = trimmed_midpoint(&obs_b, f).unwrap().delta;
        prop_assert!((da - db).abs() <= spread + 1e-12);
    }

    /// Lemma 4.5: fast and slow triggers never fire together when
    /// slack < kappa/2 (the paper uses slack = kappa/3).
    #[test]
    fn triggers_mutually_exclusive(
        own in -100.0f64..100.0,
        ests in prop::collection::vec(-100.0f64..100.0, 1..6),
        kappa in 0.1f64..10.0,
    ) {
        let slack = kappa / 3.0;
        let o = evaluate(own, &ests, kappa, slack);
        prop_assert!(!(o.fast && o.slow));
    }

    /// Conditions (zero slack) imply triggers (positive slack): the
    /// containment faithfulness (Definition 4.6) builds on.
    #[test]
    fn conditions_imply_triggers(
        own in -50.0f64..50.0,
        ests in prop::collection::vec(-50.0f64..50.0, 1..5),
        kappa in 0.5f64..5.0,
    ) {
        let c = conditions(own, &ests, kappa);
        let t = evaluate(own, &ests, kappa, kappa / 3.0);
        if c.fast { prop_assert!(t.fast); }
        if c.slow { prop_assert!(t.slow); }
    }

    /// Triggers are invariant under a common clock shift (they only read
    /// differences).
    #[test]
    fn triggers_shift_invariant(
        own in -10.0f64..10.0,
        ests in prop::collection::vec(-10.0f64..10.0, 1..5),
        shift in -1e3f64..1e3,
        kappa in 0.5f64..5.0,
    ) {
        let a = evaluate(own, &ests, kappa, kappa / 3.0);
        let shifted: Vec<f64> = ests.iter().map(|e| e + shift).collect();
        let b = evaluate(own + shift, &shifted, kappa, kappa / 3.0);
        prop_assert_eq!(a, b);
    }

    /// Hardware clocks respect the drift envelope and invert exactly, for
    /// every rate model.
    #[test]
    fn hardware_clock_envelope_and_inverse(
        seed in 0u64..200,
        rho in 1e-6f64..1e-2,
        t in 0.0f64..500.0,
        model_pick in 0usize..4,
    ) {
        let model = match model_pick {
            0 => RateModel::Constant { frac: 0.5 },
            1 => RateModel::RandomConstant,
            2 => RateModel::RandomWalk { dwell: 0.5, step: 0.5 },
            _ => RateModel::Sinusoid { period: 7.0, phase: 0.3 },
        };
        let mut clock = HardwareClock::new(rho, model, SimRng::seed_from(seed));
        let h = clock.hardware_time(SimTime::from_secs(t));
        prop_assert!(h >= t - 1e-9);
        prop_assert!(h <= t * (1.0 + rho) + 1e-9);
        let back = clock.when_hardware_reaches(h).as_secs();
        prop_assert!((back - t).abs() < 1e-6, "inverse error {}", (back - t).abs());
    }

    /// Parameter derivation: E, tau_i, delta, kappa are positive and
    /// ordered; kappa = 3 delta = 3 (k+5) E exactly.
    #[test]
    fn derived_parameters_well_formed(
        rho_exp in -6.0f64..-3.3,
        d_exp in -4.0f64..-2.0,
        u_frac in 0.01f64..1.0,
        f in 0usize..3,
    ) {
        let rho = 10f64.powf(rho_exp);
        let d = 10f64.powf(d_exp);
        let u = u_frac * d;
        if let Ok(p) = Params::practical(rho, d, u, f) {
            prop_assert!(p.e > 0.0 && p.tau1 > 0.0 && p.tau2 > p.tau1);
            prop_assert!(p.tau3 > p.tau2, "amortization dominates");
            prop_assert!((p.kappa - 3.0 * p.delta).abs() < 1e-12);
            prop_assert!((p.delta - (p.k_rounds as f64 + 5.0) * p.e).abs() < 1e-12);
            prop_assert!(p.theta_max > p.theta_g);
            // Skew bounds are monotone in diameter.
            prop_assert!(p.local_skew_bound(16) >= p.local_skew_bound(2) - 1e-12);
        }
    }

    /// The error recursion from any e(1) <= E stays <= E and is monotone
    /// toward E (Proposition B.14's fixed point).
    #[test]
    fn error_recursion_fixed_point(start_frac in 0.0f64..3.0) {
        let p = Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap();
        let seq = p.error_recursion(start_frac * p.e, 300);
        let last = *seq.last().unwrap();
        prop_assert!((last - p.e).abs() <= 1e-6 * p.e,
            "recursion settled at {last}, expected {}", p.e);
        if start_frac <= 1.0 {
            for &e in &seq {
                prop_assert!(e <= p.e * (1.0 + 1e-12));
            }
        }
    }

    /// Augmentation arithmetic: node/edge counts and round-trip indexing
    /// hold for arbitrary line lengths and fault budgets.
    #[test]
    fn augmentation_counts(n in 1usize..12, f in 0usize..3, extra in 0usize..3) {
        let k = 3 * f + 1 + extra;
        let cg = ClusterGraph::new(line(n), k, f);
        prop_assert_eq!(cg.physical().node_count(), n * k);
        let expected_edges = n * k * (k - 1) / 2 + (n - 1) * k * k;
        prop_assert_eq!(cg.physical().edge_count(), expected_edges);
        for v in 0..n * k {
            prop_assert_eq!(cg.node_id(cg.cluster_of(v), cg.slot_of(v)), v);
        }
        prop_assert!(cg.physical().is_consistent());
    }
}

proptest! {
    /// Lemma 3.1 algebra: for any correction Δ within the clamp range,
    /// line 13's rate factor keeps δ_v ∈ [0, 2/(1−ϕ)], and integrating
    /// the phase-3 rate over the stretched phase recovers exactly τ₃
    /// logical seconds in T + Δ nominal seconds.
    #[test]
    fn amortization_algebra_of_lemma_3_1(delta_frac in -0.999f64..1.0) {
        let p = Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap();
        let delta = delta_frac * p.phi * p.tau3;
        let delta_v = 1.0 - (1.0 + 1.0 / p.phi) * delta / (p.tau3 + delta);
        prop_assert!(delta_v >= -1e-12, "delta_v {delta_v} negative");
        prop_assert!(delta_v <= 2.0 / (1.0 - p.phi) + 1e-12);
        // Phase 3 runs at (1 + ϕ·δ_v)/(1 + ϕ) of the nominal rate and
        // must cover τ₃ of logical time in τ₃ + Δ of nominal time.
        let rate_ratio = (1.0 + p.phi * delta_v) / (1.0 + p.phi);
        let nominal_needed = p.tau3 / rate_ratio;
        prop_assert!(
            (nominal_needed - (p.tau3 + delta)).abs() < 1e-9 * p.tau3,
            "nominal phase-3 length {nominal_needed} != tau3 + delta {}",
            p.tau3 + delta
        );
    }

    /// Every delay distribution respects the model window [d−U, d].
    #[test]
    fn all_delay_distributions_stay_in_window(
        seed in 0u64..200,
        src in 0usize..16,
        dst in 0usize..16,
        pick in 0usize..5,
    ) {
        use ftgcs_sim::network::{DelayConfig, DelayDistribution};
        use ftgcs_sim::node::NodeId;
        use ftgcs_sim::time::SimDuration;
        let dist = match pick {
            0 => DelayDistribution::Uniform,
            1 => DelayDistribution::Maximal,
            2 => DelayDistribution::Minimal,
            3 => DelayDistribution::AsymmetricById,
            _ => DelayDistribution::AlternatingByDst,
        };
        let cfg = DelayConfig::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(100.0),
            dist,
        );
        let mut rng = SimRng::seed_from(seed);
        let s = cfg.sample(NodeId(src), NodeId(dst), &mut rng);
        prop_assert!(s >= cfg.min_delay() && s <= cfg.max_delay());
    }

    /// Same seed ⇒ identical stream; different derive labels ⇒ streams
    /// that diverge quickly (the determinism the whole harness rests on).
    #[test]
    fn rng_determinism_and_label_independence(seed in 0u64..10_000) {
        let mut a = SimRng::seed_from(seed).derive("x", 3);
        let mut b = SimRng::seed_from(seed).derive("x", 3);
        let mut c = SimRng::seed_from(seed).derive("y", 3);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        prop_assert_eq!(&va, &vb);
        prop_assert_ne!(&va, &vc);
    }

    /// Structural invariants of the topology generators.
    #[test]
    fn generator_structural_invariants(n in 3usize..20, dim in 1u32..6) {
        use ftgcs_topology::{analysis, generators};
        let ring = generators::ring(n);
        prop_assert!(ring.nodes().all(|v| ring.degree(v) == 2));
        prop_assert_eq!(analysis::diameter(&generators::line(n)), n - 1);
        let hc = generators::hypercube(dim);
        prop_assert_eq!(hc.node_count(), 1usize << dim);
        prop_assert!(hc.nodes().all(|v| hc.degree(v) == dim as usize));
        prop_assert_eq!(analysis::diameter(&hc), dim as usize);
        let star = generators::star(n);
        prop_assert_eq!(star.edge_count(), n - 1);
        prop_assert_eq!(star.max_degree(), n - 1);
        for g in [&ring, &hc, &star] {
            prop_assert!(analysis::is_connected(g));
            prop_assert!(g.is_consistent());
        }
    }

    /// Least-squares fits recover exact linear/logarithmic relationships.
    #[test]
    fn fits_recover_exact_relationships(
        slope in -10.0f64..10.0,
        intercept in -10.0f64..10.0,
    ) {
        use ftgcs_metrics::stats::{fit_line, fit_log2};
        let linear: Vec<(f64, f64)> =
            (1..8).map(|i| (i as f64, slope * i as f64 + intercept)).collect();
        let f = fit_line(&linear);
        prop_assert!((f.slope - slope).abs() < 1e-9);
        prop_assert!((f.intercept - intercept).abs() < 1e-9);
        let logp: Vec<(f64, f64)> = (1..8)
            .map(|i| {
                let x = (1usize << i) as f64;
                (x, slope * x.log2() + intercept)
            })
            .collect();
        let g = fit_log2(&logp);
        prop_assert!((g.slope - slope).abs() < 1e-9, "log slope {}", g.slope);
    }

    /// Time-series queries are consistent: `value_at_or_before` returns
    /// the latest sample not after t, and `after` drops exactly the
    /// prefix.
    #[test]
    fn time_series_query_consistency(
        values in prop::collection::vec(0.0f64..100.0, 1..30),
        cut_frac in 0.0f64..1.0,
    ) {
        use ftgcs_metrics::series::TimeSeries;
        let points: Vec<(f64, f64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        let ts = TimeSeries::from_points(points.clone());
        let cut = cut_frac * values.len() as f64;
        let tail = ts.after(cut);
        prop_assert_eq!(
            tail.len(),
            points.iter().filter(|(t, _)| *t > cut).count()
        );
        if let Some(v) = ts.value_at_or_before(cut) {
            let expect = points
                .iter()
                .rev()
                .find(|(t, _)| *t <= cut)
                .map(|&(_, v)| v)
                .unwrap();
            prop_assert_eq!(v, expect);
        } else {
            prop_assert!(points.iter().all(|(t, _)| *t > cut));
        }
    }

    /// The trimmed midpoint is translation-equivariant and
    /// scale-equivariant — it measures *relative* offsets only, which is
    /// why ClusterSync needs no absolute time.
    #[test]
    fn trimmed_midpoint_equivariance(
        obs in prop::collection::vec(-100.0f64..100.0, 4..13),
        shift in -1e3f64..1e3,
        scale in 0.1f64..10.0,
    ) {
        let f = (obs.len() - 1) / 3;
        prop_assume!(f >= 1);
        let base = trimmed_midpoint(&obs, f).unwrap().delta;
        let shifted: Vec<f64> = obs.iter().map(|x| x + shift).collect();
        let scaled: Vec<f64> = obs.iter().map(|x| x * scale).collect();
        let s1 = trimmed_midpoint(&shifted, f).unwrap().delta;
        let s2 = trimmed_midpoint(&scaled, f).unwrap().delta;
        prop_assert!((s1 - (base + shift)).abs() < 1e-9);
        prop_assert!((s2 - base * scale).abs() < 1e-6 * scale.max(1.0));
    }
}
