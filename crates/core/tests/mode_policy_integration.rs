//! Integration tests of the three mode policies ([`ModePolicy`]): what a
//! node does when neither trigger fires. Algorithm 2 leaves the mode
//! unchanged (`Sticky`); Theorem C.3's construction defaults to slow and
//! adds the catch-up rule (`CatchUp`); `DefaultSlow` is the conservative
//! middle ground. All three must keep the *local* skew bounded (the
//! triggers govern that); they differ in global-skew compression.

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::ModePolicy;
use ftgcs_metrics::skew::{cluster_local_skew_series, global_skew_series, FaultMask};
use ftgcs_sim::clock::RateModel;
use ftgcs_topology::generators::line;
use ftgcs_topology::ClusterGraph;

fn params() -> Params {
    Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible parameters")
}

fn run_with_policy(policy: ModePolicy, seed: u64, horizon: f64) -> (Scenario, f64, f64) {
    let p = params();
    let cg = ClusterGraph::new(line(4), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    s.seed(seed)
        .rate_model(RateModel::RandomConstant)
        .mode_policy(policy)
        .cluster_offset_ramp(0.8 * p.kappa);
    let run = s.run_for(horizon);
    let mask = FaultMask::none(cg.physical().node_count());
    let local = cluster_local_skew_series(&run.trace, &cg, &mask)
        .after(3.0 * p.t_round)
        .max()
        .unwrap();
    let global = global_skew_series(&run.trace, &mask).last().unwrap();
    (s, local, global)
}

#[test]
fn every_policy_keeps_local_skew_bounded() {
    let p = params();
    let bound = p.local_skew_bound(3);
    for (policy, seed) in [
        (ModePolicy::Sticky, 11),
        (ModePolicy::DefaultSlow, 12),
        (ModePolicy::CatchUp, 13),
    ] {
        let (_, local, _) = run_with_policy(policy, seed, 80.0);
        assert!(
            local <= bound,
            "{policy:?}: local skew {local} > bound {bound}"
        );
    }
}

#[test]
fn catch_up_compresses_global_skew_best() {
    // Same seed => identical clock-rate draws and delays; only the policy
    // differs. The ramp (0.8 kappa/hop = 2.4 delta/hop, total 7.2 delta)
    // sits below the FT threshold, so triggers alone never compress it.
    let (_, _, g_catch) = run_with_policy(ModePolicy::CatchUp, 14, 200.0);
    let (_, _, g_slow) = run_with_policy(ModePolicy::DefaultSlow, 14, 200.0);
    // 7.2 delta < c delta = 8 delta: even catch-up cannot engage on this
    // shallow ramp... so instead inject a steeper one in a second pass.
    assert!(
        g_catch <= g_slow * 1.05,
        "catch-up should never be worse: {g_catch} vs {g_slow}"
    );
}

#[test]
fn catch_up_engages_only_beyond_its_threshold() {
    // Steeper ramp: 1.4 kappa/hop = 4.2 delta/hop, total 12.6 delta > c
    // delta. Now catch-up must make a visible difference vs DefaultSlow.
    let p = params();
    let make = |policy: ModePolicy| {
        let cg = ClusterGraph::new(line(4), 4, 1);
        let mut s = Scenario::new(cg.clone(), p.clone());
        s.seed(15)
            .rate_model(RateModel::RandomConstant)
            .mode_policy(policy)
            .cluster_offset_ramp(1.4 * p.kappa);
        let run = s.run_for(200.0);
        let mask = FaultMask::none(16);
        global_skew_series(&run.trace, &mask).last().unwrap()
    };
    let g_catch = make(ModePolicy::CatchUp);
    let g_slow = make(ModePolicy::DefaultSlow);
    assert!(
        g_catch < g_slow - p.delta,
        "catch-up should compress a steep ramp: {g_catch} vs {g_slow}"
    );
    // ... down to (roughly) its engagement floor c*delta.
    assert!(
        g_catch <= (p.catch_up_c + 1.5) * p.delta,
        "catch-up stalled above its floor: {g_catch}"
    );
}

#[test]
fn sticky_policy_holds_the_last_mode() {
    // A 2-cluster gap above the FT threshold makes the behind cluster go
    // fast. Once the gap closes below the threshold the triggers go
    // quiet: DefaultSlow stops there, while Sticky keeps the last (fast)
    // mode and overshoots further, until the *slow* trigger eventually
    // fires. The end states must differ visibly.
    let p = params();
    let make = |policy: ModePolicy| {
        let cg = ClusterGraph::new(line(2), 4, 1);
        let mut s = Scenario::new(cg.clone(), p.clone());
        s.seed(16)
            .mode_policy(policy)
            .max_estimator(false)
            .cluster_offset(1, 2.5 * p.kappa);
        let run = s.run_for(150.0);
        let mask = FaultMask::none(8);
        global_skew_series(&run.trace, &mask).last().unwrap()
    };
    let g_sticky = make(ModePolicy::Sticky);
    let g_slow = make(ModePolicy::DefaultSlow);
    assert!(
        g_sticky < g_slow - p.delta,
        "sticky should overshoot below default-slow's stall point: \
         sticky={g_sticky}, default-slow={g_slow}"
    );
}

#[test]
fn disabling_the_estimator_forces_slow_fallback() {
    // CatchUp without the estimator cannot consult M_v: it must behave
    // exactly like DefaultSlow (the implementation guards on is_some).
    let p = params();
    let make = |policy: ModePolicy, estimator: bool| {
        let cg = ClusterGraph::new(line(3), 4, 1);
        let mut s = Scenario::new(cg.clone(), p.clone());
        s.seed(17)
            .mode_policy(policy)
            .max_estimator(estimator)
            .cluster_offset_ramp(1.4 * p.kappa);
        let run = s.run_for(60.0);
        let mask = FaultMask::none(12);
        global_skew_series(&run.trace, &mask).last().unwrap()
    };
    let catch_no_est = make(ModePolicy::CatchUp, false);
    let slow_no_est = make(ModePolicy::DefaultSlow, false);
    assert!(
        (catch_no_est - slow_no_est).abs() < 1e-12,
        "catch-up without estimator must degrade to default-slow exactly"
    );
}
