//! Topology sweep: Theorem 1.1 is stated for *arbitrary* graphs `G`.
//! These tests run the full stack on rings, grids, trees, hypercubes,
//! stars, and random graphs — each with one Byzantine node per cluster —
//! and check the intra-cluster and local-skew bounds.

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_metrics::skew::{cluster_local_skew_series, intra_cluster_skew_series, FaultMask};
use ftgcs_sim::rng::SimRng;
use ftgcs_topology::{analysis, generators, ClusterGraph, Graph};

fn params() -> Params {
    Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible parameters")
}

fn check_bounds_on(base: Graph, seed: u64, label: &str) {
    let p = params();
    let diameter = analysis::diameter(&base);
    let cg = ClusterGraph::new(base, 4, 1);
    let n = cg.physical().node_count();
    let mut s = Scenario::new(cg.clone(), p.clone());
    s.seed(seed).with_fault_per_cluster(
        &FaultKind::TwoFaced {
            amplitude: 0.5 * p.phi * p.tau3,
        },
        1,
    );
    let run = s.run_for(30.0);
    let mask = FaultMask::from_nodes(n, &run.faulty);
    let warm = 3.0 * p.t_round;
    let intra = intra_cluster_skew_series(&run.trace, &cg, &mask)
        .after(warm)
        .max()
        .unwrap();
    // Graphs without base edges (single cluster) have no local skew.
    let local = cluster_local_skew_series(&run.trace, &cg, &mask)
        .after(warm)
        .max()
        .unwrap_or(0.0);
    assert!(
        intra <= p.intra_cluster_skew_bound(),
        "{label}: intra {intra} > {}",
        p.intra_cluster_skew_bound()
    );
    assert!(
        local <= p.local_skew_bound(diameter),
        "{label}: local {local} > {}",
        p.local_skew_bound(diameter)
    );
}

#[test]
fn ring_topology_respects_bounds() {
    check_bounds_on(generators::ring(6), 51, "ring(6)");
}

#[test]
fn grid_topology_respects_bounds() {
    check_bounds_on(generators::grid(3, 3), 52, "grid(3,3)");
}

#[test]
fn tree_topology_respects_bounds() {
    check_bounds_on(generators::balanced_tree(2, 3), 53, "tree(2,3)");
}

#[test]
fn hypercube_topology_respects_bounds() {
    check_bounds_on(generators::hypercube(3), 54, "hypercube(3)");
}

#[test]
fn star_topology_respects_bounds() {
    // A star stresses the hub: it estimates every leaf cluster at once.
    check_bounds_on(generators::star(6), 55, "star(6)");
}

#[test]
fn random_connected_graph_respects_bounds() {
    let mut rng = SimRng::seed_from(56);
    // Dense enough to be connected with near-certainty at n = 8.
    let g = generators::erdos_renyi(8, 0.5, &mut rng);
    if analysis::is_connected(&g) {
        check_bounds_on(g, 57, "erdos_renyi(8, 0.5)");
    }
}

#[test]
fn torus_topology_respects_bounds() {
    check_bounds_on(generators::torus(3, 3), 58, "torus(3,3)");
}

#[test]
fn single_cluster_degenerate_graph_works() {
    // D = 0: no inter-cluster machinery at all; the stack must still run
    // and satisfy Corollary 3.2.
    check_bounds_on(generators::line(1), 59, "line(1)");
}
