//! Integration tests of Byzantine resilience (Theorem 1.1's premise: at
//! most `f` faults per cluster): every implemented attack strategy must
//! leave both the intra-cluster bound (Corollary 3.2) and the gradient
//! bound (Theorem 4.10) intact.

use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::FaultKind;
use ftgcs_metrics::skew::{cluster_local_skew_series, intra_cluster_skew_series, FaultMask};
use ftgcs_sim::clock::RateModel;
use ftgcs_topology::generators::line;
use ftgcs_topology::ClusterGraph;

fn params() -> Params {
    Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible parameters")
}

fn attack_scenario(kind: &FaultKind, seed: u64) -> Scenario {
    let p = params();
    let cg = ClusterGraph::new(line(3), 4, 1);
    let mut s = Scenario::new(cg, p);
    s.seed(seed)
        .rate_model(RateModel::RandomConstant)
        .with_fault_per_cluster(kind, 1);
    s
}

fn assert_bounds_hold(kind: &FaultKind, seed: u64) {
    let s = attack_scenario(kind, seed);
    let p = s.params().clone();
    let cg = s.cluster_graph().clone();
    let run = s.run_for(60.0);
    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    let intra = intra_cluster_skew_series(&run.trace, &cg, &mask)
        .max()
        .unwrap();
    let intra_bound = p.intra_cluster_skew_bound();
    assert!(
        intra <= intra_bound,
        "{kind:?}: intra-cluster skew {intra} > bound {intra_bound}"
    );
    let local = cluster_local_skew_series(&run.trace, &cg, &mask)
        .max()
        .unwrap();
    let local_bound = p.local_skew_bound(2);
    assert!(
        local <= local_bound,
        "{kind:?}: cluster local skew {local} > bound {local_bound}"
    );
}

#[test]
fn silent_attack_bounded() {
    assert_bounds_hold(&FaultKind::Silent, 11);
}

#[test]
fn crash_attack_bounded() {
    assert_bounds_hold(&FaultKind::Crash { at: 20.0 }, 12);
}

#[test]
fn random_pulser_attack_bounded() {
    assert_bounds_hold(
        &FaultKind::RandomPulser {
            mean_interval: 0.05,
        },
        13,
    );
}

#[test]
fn two_faced_attack_bounded() {
    // Amplitude at the plausibility edge: phi * tau3 ~= theta_g (E + U).
    let p = params();
    let amp = p.phi * p.tau3 * 0.9;
    assert_bounds_hold(&FaultKind::TwoFaced { amplitude: amp }, 14);
}

#[test]
fn skew_puller_attacks_bounded_both_directions() {
    let p = params();
    let off = p.phi * p.tau3 * 0.9;
    assert_bounds_hold(&FaultKind::SkewPuller { offset: -off }, 15);
    assert_bounds_hold(&FaultKind::SkewPuller { offset: off }, 16);
}

#[test]
fn stealthy_rusher_attack_bounded() {
    assert_bounds_hold(&FaultKind::StealthyRusher { extra_rate: 0.02 }, 17);
}

#[test]
fn level_flooder_cannot_inflate_max_estimates() {
    let s = attack_scenario(&FaultKind::LevelFlooder { level_step: 1000 }, 18);
    let cg = s.cluster_graph().clone();
    let run = s.run_for(40.0);
    let mask = FaultMask::from_nodes(cg.physical().node_count(), &run.faulty);
    // Safety (Lemma C.2): every correct node's M_v must stay at or below
    // the max correct clock at the same instant. Mode rows carry
    // [cluster, round, gamma, ft, st, own_L, M_v]; compare M_v against
    // the clock sample taken at or after the row.
    let mut checked = 0;
    for row in run.trace.rows_of_kind(ftgcs::node::ROW_MODE) {
        if mask.is_faulty(row.node.index()) {
            continue;
        }
        let m = row.values[6];
        if m < 0.0 {
            continue;
        }
        let sample = run
            .trace
            .samples
            .iter()
            .find(|s| s.t >= row.t)
            .expect("sample after row");
        let lmax = sample
            .logical
            .iter()
            .enumerate()
            .filter(|&(v, _)| !mask.is_faulty(v))
            .map(|(_, &l)| l)
            .fold(f64::MIN, f64::max);
        assert!(
            m <= lmax + 1e-9,
            "M_v = {m} exceeds L_max = {lmax} at t={} despite flooding",
            row.t
        );
        checked += 1;
    }
    assert!(checked > 100, "too few mode rows audited: {checked}");
}

#[test]
fn mixed_attacks_across_clusters_bounded() {
    let p = params();
    let cg = ClusterGraph::new(line(3), 4, 1);
    let mut s = Scenario::new(cg.clone(), p.clone());
    let amp = p.phi * p.tau3 * 0.5;
    s.seed(19)
        .rate_model(RateModel::RandomConstant)
        .with_fault(0, FaultKind::TwoFaced { amplitude: amp })
        .with_fault(cg.node_id(1, 2), FaultKind::SkewPuller { offset: -amp })
        .with_fault(
            cg.node_id(2, 1),
            FaultKind::RandomPulser { mean_interval: 0.1 },
        );
    assert!(!s.faults_exceed_budget());
    let run = s.run_for(60.0);
    let mask = FaultMask::from_nodes(12, &run.faulty);
    let intra = intra_cluster_skew_series(&run.trace, &cg, &mask)
        .max()
        .unwrap();
    assert!(intra <= p.intra_cluster_skew_bound());
}

#[test]
fn exceeding_the_fault_budget_is_flagged_and_survivable() {
    // Two Byzantine nodes in a 4-cluster violate f=1: no bound is promised
    // (and the adversary can now control the trimmed midpoint), but the
    // implementation must not panic or deadlock.
    let p = params();
    let amp = p.phi * p.tau3 * 0.9;
    let cg = ClusterGraph::new(line(2), 4, 1);
    let mut s = Scenario::new(cg, p);
    s.seed(20)
        .rate_model(RateModel::RandomConstant)
        .with_fault(0, FaultKind::SkewPuller { offset: -amp })
        .with_fault(1, FaultKind::SkewPuller { offset: -amp });
    assert!(s.faults_exceed_budget());
    let run = s.run_for(20.0);
    assert!(run.stats.events > 0);
    assert_eq!(run.faulty, vec![0, 1]);
}
