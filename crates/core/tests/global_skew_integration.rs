//! Integration tests of the global-skew machinery (paper Appendix C):
//! max-estimate safety (`M_v ≤ L_max`, Lemma C.2), catch-up effectiveness
//! (Theorem C.3), and the `O(δD)` global skew bound.

use ftgcs::node::ROW_MODE;
use ftgcs::params::Params;
use ftgcs::runner::Scenario;
use ftgcs::ModePolicy;
use ftgcs_metrics::skew::{global_skew_series, FaultMask};
use ftgcs_sim::clock::RateModel;
use ftgcs_topology::generators::line;
use ftgcs_topology::ClusterGraph;

fn params() -> Params {
    Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible parameters")
}

/// Extreme drift split: the first cluster's hardware runs at `1+ρ`, the
/// last at `1` — the adversarial configuration that maximizes global
/// divergence.
fn extreme_line(n: usize, seed: u64) -> Scenario {
    let p = params();
    let cg = ClusterGraph::new(line(n), 4, 1);
    let mut s = Scenario::new(cg.clone(), p);
    s.seed(seed);
    for c in 0..n {
        let frac = if c == 0 { 1.0 } else { 0.0 };
        for v in cg.members(c) {
            s.rate_override(v, RateModel::Constant { frac });
        }
    }
    s
}

#[test]
fn max_estimate_never_exceeds_l_max() {
    let s = extreme_line(3, 1);
    let run = s.run_for(60.0);
    let mask = FaultMask::none(12);
    let mut checked = 0;
    for row in run.trace.rows_of_kind(ROW_MODE) {
        let m = row.values[6];
        if m < 0.0 {
            continue;
        }
        let sample = run
            .trace
            .samples
            .iter()
            .find(|s| s.t >= row.t)
            .expect("sample after row");
        let lmax = sample.logical.iter().cloned().fold(f64::MIN, f64::max);
        assert!(m <= lmax + 1e-9, "M_v={m} > L_max={lmax} at {}", row.t);
        checked += 1;
    }
    assert!(checked > 200, "audited only {checked} rows");
    let _ = mask;
}

#[test]
fn max_estimate_stays_reasonably_fresh() {
    let s = extreme_line(3, 2);
    let p = s.params().clone();
    let run = s.run_for(120.0);
    // After the flood warms up, M_v should lag L_max by at most the level
    // unit + propagation term (our engineering bound: X + 2dD + slack).
    let lag_bound = p.level_unit + 2.0 * p.d * 3.0 + 3.0 * p.e + p.t_round;
    let mut worst: f64 = 0.0;
    for row in run.trace.rows_of_kind(ROW_MODE) {
        if row.t.as_secs() < 20.0 {
            continue;
        }
        let m = row.values[6];
        if m < 0.0 {
            continue;
        }
        let sample = run
            .trace
            .samples
            .iter()
            .find(|s| s.t >= row.t)
            .expect("sample after row");
        let lmax = sample.logical.iter().cloned().fold(f64::MIN, f64::max);
        worst = worst.max(lmax - m);
    }
    assert!(
        worst <= lag_bound,
        "M_v lag {worst} exceeds engineering bound {lag_bound}"
    );
}

#[test]
fn global_skew_bounded_under_extreme_drift() {
    let n = 4;
    let s = extreme_line(n, 3);
    let p = s.params().clone();
    let run = s.run_for(120.0);
    let mask = FaultMask::none(4 * n);
    let global = global_skew_series(&run.trace, &mask);
    let bound = p.global_skew_bound(n - 1);
    let max = global.max().unwrap();
    assert!(max <= bound, "global skew {max} > bound {bound}");
}

#[test]
fn catch_up_beats_default_slow_on_a_ramp() {
    // Theorem C.3's scenario: a *multi-hop* ramp where every adjacent gap
    // (3δ) is below the fast-trigger engagement threshold (2κ−δ = 5δ), so
    // FT never fires, but the cumulative gap of the tail cluster
    // (12δ ≥ c·δ = 8δ) exceeds the catch-up threshold. Only the catch-up
    // rule can compress such a ramp; a 2-hop gap of the same total size
    // would be closed by FT alone.
    let p = params();
    let step = 3.0 * p.delta;
    let make = |policy: ModePolicy, seed: u64| {
        let cg = ClusterGraph::new(line(5), 4, 1);
        let mut s = Scenario::new(cg, p.clone());
        s.seed(seed)
            .rate_model(RateModel::RandomConstant)
            .mode_policy(policy);
        for c in 0..5 {
            s.cluster_offset(c, step * (4 - c) as f64);
        }
        let run = s.run_for(150.0);
        let mask = FaultMask::none(20);
        global_skew_series(&run.trace, &mask).last().unwrap()
    };
    let with_catch_up = make(ModePolicy::CatchUp, 4);
    let without = make(ModePolicy::DefaultSlow, 4);
    assert!(
        with_catch_up < without * 0.8,
        "catch-up ({with_catch_up}) should beat default-slow ({without})"
    );
}

#[test]
fn disabled_estimator_reports_sentinel() {
    let p = params();
    let cg = ClusterGraph::new(line(2), 4, 1);
    let mut s = Scenario::new(cg, p);
    s.seed(5)
        .max_estimator(false)
        .mode_policy(ModePolicy::DefaultSlow);
    let run = s.run_for(5.0);
    for row in run.trace.rows_of_kind(ROW_MODE) {
        assert_eq!(row.values[6], -1.0, "sentinel expected when disabled");
    }
}
