//! Property tests for the [`ScenarioSpec`] text format.
//!
//! The format is the unit of experiment exchange (everything the `xp`
//! driver runs is a spec file), so its parser and printer must be exact
//! inverses: for every spec, `parse(print(s)) == s`, and printing is a
//! fixed point (`print(parse(print(s))) == print(s)`). Specs are
//! generated over every topology kind, fault strategy, rate model,
//! delay distribution, scheduler, and sugar combination.

use ftgcs::faults::FaultKind;
use ftgcs::runner::Scenario;
use ftgcs::spec::{DurationSpec, SampleSpec, ScenarioSpec, SchedulerSpec, TopologySpec};
use ftgcs::triggers::ModePolicy;
use ftgcs_sim::clock::RateModel;
use ftgcs_sim::network::DelayDistribution;
use proptest::prelude::*;

/// Deterministic f64 grid that exercises awkward printing cases
/// (shortest-round-trip decimals, exponents, zero).
fn pick_f64(idx: u64) -> f64 {
    const GRID: [f64; 8] = [0.1, 1e-4, 2.5, 0.333_333_333_333, 7e-9, 12.0, 0.007, 1e3];
    GRID[(idx % 8) as usize]
}

fn pick_topology(kind: u64, a: usize, b: usize) -> TopologySpec {
    let a = a.max(1);
    let b = b.max(1);
    match kind % 8 {
        0 => TopologySpec::Line(a),
        1 => TopologySpec::Ring(a + 2),
        2 => TopologySpec::Star(a + 1),
        3 => TopologySpec::Complete(a),
        4 => TopologySpec::Grid(a, b),
        5 => TopologySpec::Torus(a + 1, b + 1),
        6 => TopologySpec::Hypercube((a % 5) as u32),
        _ => TopologySpec::Tree(a.clamp(2, 3), b % 4),
    }
}

fn pick_fault(kind: u64, arg: u64) -> FaultKind {
    match kind % 7 {
        0 => FaultKind::Silent,
        1 => FaultKind::Crash { at: pick_f64(arg) },
        2 => FaultKind::RandomPulser {
            mean_interval: pick_f64(arg),
        },
        3 => FaultKind::TwoFaced {
            amplitude: pick_f64(arg),
        },
        4 => FaultKind::SkewPuller {
            offset: pick_f64(arg),
        },
        5 => FaultKind::StealthyRusher {
            extra_rate: pick_f64(arg),
        },
        _ => FaultKind::LevelFlooder { level_step: arg },
    }
}

fn pick_rate_model(kind: u64, a: u64, b: u64) -> RateModel {
    match kind % 5 {
        0 => RateModel::Constant { frac: pick_f64(a) },
        1 => RateModel::RandomConstant,
        2 => RateModel::RandomWalk {
            dwell: pick_f64(a),
            step: pick_f64(b),
        },
        3 => RateModel::Sinusoid {
            period: pick_f64(a),
            phase: pick_f64(b),
        },
        _ => RateModel::Schedule(vec![
            (0.0, pick_f64(a)),
            (pick_f64(b) + 1.0, pick_f64(a ^ 1)),
        ]),
    }
}

fn pick_delay(kind: u64) -> DelayDistribution {
    match kind % 5 {
        0 => DelayDistribution::Uniform,
        1 => DelayDistribution::Maximal,
        2 => DelayDistribution::Minimal,
        3 => DelayDistribution::AsymmetricById,
        _ => DelayDistribution::AlternatingByDst,
    }
}

/// Builds a spec from raw generated integers — every field exercised.
#[allow(clippy::too_many_arguments)] // proptest feeds every spec field through one flat strategy tuple
fn assemble(
    topo: (u64, usize, usize),
    f: usize,
    extra_k: usize,
    seed: u64,
    duration: (u64, u64),
    knobs: (u64, u64, u64, u64, u64),
    sugar: (u64, u64, u64),
    lists: &[(u64, u64, u64)],
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("generated", pick_topology(topo.0, topo.1, topo.2), f);
    spec.cluster_size = 3 * f + 1 + extra_k;
    spec.seed = seed;
    spec.duration = if duration.0.is_multiple_of(2) {
        DurationSpec::Secs(pick_f64(duration.1))
    } else {
        DurationSpec::Rounds(pick_f64(duration.1))
    };
    let (delay, rate_kind, rate_a, rate_b, policy) = knobs;
    spec.delay = pick_delay(delay);
    spec.rate_model = pick_rate_model(rate_kind, rate_a, rate_b);
    spec.mode_policy = match policy % 3 {
        0 => ModePolicy::Sticky,
        1 => ModePolicy::DefaultSlow,
        _ => ModePolicy::CatchUp,
    };
    let (sample, spread, sched) = sugar;
    spec.sample_interval = match sample % 3 {
        0 => SampleSpec::HalfRound,
        1 => SampleSpec::Off,
        _ => SampleSpec::Secs(pick_f64(sample)),
    };
    spec.max_estimator = spread % 2 == 0;
    spec.offset_spread = pick_f64(spread) * 1e-4;
    spec.offset_ramp = pick_f64(spread ^ 3) * 1e-4;
    spec.scheduler = match sched % 3 {
        0 => SchedulerSpec::Global,
        1 => SchedulerSpec::ShardedByCluster,
        _ => SchedulerSpec::Parallel((sched % 7) as usize),
    };
    for (i, &(a, b, c)) in lists.iter().enumerate() {
        match a % 8 {
            0 => spec.cluster_offsets.push((i, pick_f64(b) * 1e-4)),
            1 => {
                // Explicit faults must be unique per node; index by i.
                spec.faults.push((i, pick_fault(b, c)));
            }
            2 => spec
                .faults_per_cluster
                .push((1 + (b % 2) as usize, pick_fault(c, b))),
            3 => spec
                .random_faults
                .push(((b % 3) as usize, c, pick_fault(b, c))),
            4 => {
                // Windows are per-node like explicit faults; index by i
                // keeps them collision-free, and the grid is positive so
                // `to > from` always holds.
                let from = pick_f64(b);
                spec.fault_windows
                    .push((i, pick_fault(b, c), from, from + pick_f64(c)));
            }
            5 => {
                let period = pick_f64(b);
                spec.churn
                    .push((1 + (b % 3) as usize, pick_fault(c, b), period, period / 2.0));
            }
            6 => spec
                .mobile
                .push((1 + (c % 2) as usize, pick_fault(b, c), pick_f64(c))),
            _ => spec.rate_overrides.push((i, pick_rate_model(b, c, b ^ c))),
        }
    }
    spec
}

proptest! {
    #[test]
    fn parse_print_parse_is_identity(
        topo in (0u64..8, 1usize..5, 1usize..4),
        f in 0usize..3,
        extra_k in 0usize..3,
        seed in 0u64..1_000_000,
        duration in (0u64..4, 0u64..8),
        knobs in (0u64..5, 0u64..5, 0u64..8, 0u64..8, 0u64..3),
        sugar in (0u64..6, 0u64..8, 0u64..9),
        lists in prop::collection::vec((0u64..8, 0u64..9, 0u64..9), 0..6),
    ) {
        let spec = assemble(topo, f, extra_k, seed, duration, knobs, sugar, &lists);
        let text = spec.print();
        let parsed = ScenarioSpec::parse(&text)
            .map_err(|e| TestCaseError::Fail(format!("parse failed: {e}\n{text}")))?;
        prop_assert_eq!(&parsed, &spec);
        // Printing is a fixed point.
        prop_assert_eq!(parsed.print(), text);
    }
}

#[test]
fn from_spec_to_spec_round_trips_for_feasible_specs() {
    // A richly loaded but feasible spec: from_spec must build, and
    // to_spec must reconstruct the canonical form (sugar expanded).
    let mut spec = ScenarioSpec::new("rt", TopologySpec::Line(3), 1);
    spec.seed = 17;
    spec.duration = DurationSpec::Rounds(12.0);
    spec.delay = DelayDistribution::Maximal;
    spec.rate_model = RateModel::Constant { frac: 1.0 };
    spec.sample_interval = SampleSpec::Secs(0.05);
    spec.mode_policy = ModePolicy::DefaultSlow;
    spec.max_estimator = false;
    spec.offset_spread = 1e-5;
    spec.cluster_offsets = vec![(2, 3e-4)];
    spec.faults = vec![(1, FaultKind::Silent)];
    spec.fault_windows = vec![(2, FaultKind::TwoFaced { amplitude: 1e-3 }, 0.02, 0.05)];
    spec.rate_overrides = vec![(0, RateModel::Constant { frac: 0.0 })];
    spec.scheduler = SchedulerSpec::Parallel(2);
    let scenario = Scenario::from_spec(&spec).expect("feasible spec builds");
    let back = scenario.to_spec().expect("spec-built scenario round-trips");
    assert_eq!(back, spec);
    // And the canonical text round-trips too.
    assert_eq!(ScenarioSpec::parse(&back.print()).unwrap(), back);
}

#[test]
fn to_spec_canonicalizes_sugar_into_explicit_placements() {
    let mut spec = ScenarioSpec::new("sugar", TopologySpec::Line(2), 1);
    spec.faults_per_cluster = vec![(1, FaultKind::Silent)];
    spec.offset_ramp = 2e-4;
    let scenario = Scenario::from_spec(&spec).expect("builds");
    let back = scenario.to_spec().expect("round-trips");
    // Sugar expanded: slot 0 of both clusters faulty, ramp explicit.
    assert_eq!(
        back.faults,
        vec![(0, FaultKind::Silent), (4, FaultKind::Silent)]
    );
    assert!(back.faults_per_cluster.is_empty());
    assert_eq!(back.offset_ramp, 0.0);
    assert_eq!(back.cluster_offsets, vec![(1, 2e-4)]);
    // The canonical spec rebuilds the identical scenario.
    let again = Scenario::from_spec(&back).expect("canonical spec builds");
    assert_eq!(again.faulty_nodes(), scenario.faulty_nodes());
    assert_eq!(again.to_spec().unwrap(), back);
}

#[test]
fn from_spec_rejects_out_of_range_placements() {
    let mut spec = ScenarioSpec::new("bad", TopologySpec::Line(2), 1);
    spec.faults = vec![(99, FaultKind::Silent)];
    assert!(Scenario::from_spec(&spec).is_err());

    let mut spec = ScenarioSpec::new("bad", TopologySpec::Line(2), 1);
    spec.faults = vec![(0, FaultKind::Silent), (0, FaultKind::Silent)];
    assert!(Scenario::from_spec(&spec).is_err());

    let mut spec = ScenarioSpec::new("bad", TopologySpec::Line(2), 1);
    spec.cluster_offsets = vec![(7, 1e-4)];
    assert!(Scenario::from_spec(&spec).is_err());
}

#[test]
fn from_spec_rejects_sugar_explicit_fault_collisions_without_panicking() {
    // `fault 0 silent` + `fault_per_cluster 1 silent` both claim node 0:
    // this must surface as a SpecError (the xp CLI reports it cleanly),
    // not as the builder methods' panic.
    let mut spec = ScenarioSpec::new("clash", TopologySpec::Line(2), 1);
    spec.faults = vec![(0, FaultKind::Silent)];
    spec.faults_per_cluster = vec![(1, FaultKind::Silent)];
    let err = Scenario::from_spec(&spec).unwrap_err();
    assert!(err.msg.contains("two faults"), "{err}");

    // Same for two sugar lines that overlap each other.
    let mut spec = ScenarioSpec::new("clash2", TopologySpec::Line(2), 1);
    spec.faults_per_cluster = vec![(1, FaultKind::Silent), (1, FaultKind::Silent)];
    assert!(Scenario::from_spec(&spec).is_err());

    // Sugar counts beyond the cluster size are typos, not experiments
    // (with_fault_per_cluster would panic; with_random_faults would
    // silently clamp).
    let mut spec = ScenarioSpec::new("big", TopologySpec::Line(2), 1);
    spec.faults_per_cluster = vec![(5, FaultKind::Silent)];
    assert!(Scenario::from_spec(&spec).is_err());
    let mut spec = ScenarioSpec::new("big2", TopologySpec::Line(2), 1);
    spec.random_faults = vec![(5, 9, FaultKind::Silent)];
    assert!(Scenario::from_spec(&spec).is_err());
}

#[test]
fn from_spec_rejects_degenerate_sampling_durations_and_names() {
    // A zero sample interval would livelock the engine (the sample
    // event re-arms at the same instant forever).
    let mut spec = ScenarioSpec::new("zero", TopologySpec::Line(2), 1);
    spec.sample_interval = SampleSpec::Secs(0.0);
    assert!(Scenario::from_spec(&spec).is_err());
    // The text format rejects it at parse time too.
    assert!(ScenarioSpec::parse("name x\ntopology line 2\nsample_interval 0\n").is_err());
    assert!(ScenarioSpec::parse("name x\ntopology line 2\nduration -1\n").is_err());
    // An infinite horizon would never terminate.
    assert!(ScenarioSpec::parse("name x\ntopology line 2\nduration inf\n").is_err());
    let mut spec = ScenarioSpec::new("inf", TopologySpec::Line(2), 1);
    spec.duration = DurationSpec::Secs(f64::INFINITY);
    assert!(Scenario::from_spec(&spec).is_err());

    // Names that cannot survive the line-oriented text format are
    // rejected up front, keeping `to_spec().print()` re-parseable.
    let spec = ScenarioSpec::new("two words", TopologySpec::Line(2), 1);
    assert!(Scenario::from_spec(&spec).is_err());
    let spec = ScenarioSpec::new("has#hash", TopologySpec::Line(2), 1);
    assert!(Scenario::from_spec(&spec).is_err());
}

#[test]
fn hand_assembled_scenarios_refuse_to_spec() {
    use ftgcs::params::Params;
    use ftgcs_topology::{generators, ClusterGraph};
    let params = Params::practical(1e-4, 1e-3, 1e-4, 1).unwrap();
    let scenario = Scenario::new(ClusterGraph::new(generators::line(2), 4, 1), params);
    assert!(scenario.to_spec().is_err());
}

#[test]
fn spec_duration_resolves_rounds_against_derived_params() {
    let spec = ScenarioSpec::new("dur", TopologySpec::Line(2), 1);
    let params = spec.params().unwrap();
    assert_eq!(
        DurationSpec::Rounds(10.0).resolve(&params),
        10.0 * params.t_round
    );
    assert_eq!(DurationSpec::Secs(2.5).resolve(&params), 2.5);
}
