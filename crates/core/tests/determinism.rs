//! Full-stack determinism: a complete FTGCS scenario — cluster sync,
//! triggers, Byzantine faults, the works — is a pure function of its
//! seed and configuration. Guards the same `ftgcs_sim::rng` contract as
//! the substrate-level test in `crates/sim/tests/determinism.rs`, but
//! through every layer the algorithm adds on top.

use ftgcs::params::Params;
use ftgcs::runner::{Scenario, ScenarioRun};
use ftgcs::FaultKind;
use ftgcs_topology::{generators, ClusterGraph};

fn run(seed: u64) -> ScenarioRun {
    let params = Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible environment");
    let cg = ClusterGraph::new(generators::line(3), 4, 1);
    let mut scenario = Scenario::new(cg, params);
    scenario
        .seed(seed)
        .initial_offset_spread(1e-4)
        .with_fault_per_cluster(&FaultKind::Silent, 1);
    scenario.run_for(30.0)
}

#[test]
fn scenario_runs_are_reproducible() {
    let a = run(7);
    let b = run(7);
    assert!(
        !a.trace.samples.is_empty() && !a.trace.rows.is_empty(),
        "scenario trace must be non-trivial"
    );
    assert_eq!(a.faulty, b.faulty, "fault placement must be reproducible");
    assert_eq!(
        a.trace.to_bytes(),
        b.trace.to_bytes(),
        "same (seed, scenario) must reproduce the trace byte-for-byte"
    );
    let c = run(8);
    assert_ne!(
        a.trace.to_bytes(),
        c.trace.to_bytes(),
        "a different seed must change the run, or this test has no power"
    );
}
