//! Full-stack determinism: a complete FTGCS scenario — cluster sync,
//! triggers, Byzantine faults, the works — is a pure function of its
//! seed and configuration. Guards the same `ftgcs_sim::rng` contract as
//! the substrate-level test in `crates/sim/tests/determinism.rs`, but
//! through every layer the algorithm adds on top.

use ftgcs::params::Params;
use ftgcs::runner::{Scenario, ScenarioRun};
use ftgcs::FaultKind;
use ftgcs_topology::{generators, ClusterGraph};

fn run(seed: u64) -> ScenarioRun {
    let params = Params::practical(1e-4, 1e-3, 1e-4, 1).expect("feasible environment");
    let cg = ClusterGraph::new(generators::line(3), 4, 1);
    let mut scenario = Scenario::new(cg, params);
    scenario
        .seed(seed)
        .initial_offset_spread(1e-4)
        .with_fault_per_cluster(&FaultKind::Silent, 1);
    scenario.run_for(30.0)
}

fn trace_bytes(run: &ScenarioRun) -> Vec<u8> {
    let mut buf = Vec::new();
    run.trace
        .write_samples_csv(&mut buf)
        .expect("writing to a Vec cannot fail");
    for row in &run.trace.rows {
        buf.extend_from_slice(format!("{row:?}\n").as_bytes());
    }
    buf
}

#[test]
fn scenario_runs_are_reproducible() {
    let a = run(7);
    let b = run(7);
    assert!(
        !a.trace.samples.is_empty() && !a.trace.rows.is_empty(),
        "scenario trace must be non-trivial"
    );
    assert_eq!(a.faulty, b.faulty, "fault placement must be reproducible");
    assert_eq!(
        trace_bytes(&a),
        trace_bytes(&b),
        "same (seed, scenario) must reproduce the trace byte-for-byte"
    );
    let c = run(8);
    assert_ne!(
        trace_bytes(&a),
        trace_bytes(&c),
        "a different seed must change the run, or this test has no power"
    );
}
