//! Time series of scalar measurements.

use std::fmt;

/// A time-ordered sequence of `(t, value)` points.
///
/// # Examples
///
/// ```
/// use ftgcs_metrics::series::TimeSeries;
///
/// let mut s = TimeSeries::new();
/// s.push(0.0, 1.0);
/// s.push(1.0, 3.0);
/// s.push(2.0, 2.0);
/// assert_eq!(s.max(), Some(3.0));
/// assert_eq!(s.value_at_or_before(1.5), Some(3.0));
/// assert_eq!(s.after(0.5).max(), Some(3.0));
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Builds a series from `(t, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if times are not non-decreasing or any value is NaN.
    #[must_use]
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in points {
            s.push(t, v);
        }
        s
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last point's time, or if either input is
    /// NaN.
    pub fn push(&mut self, t: f64, value: f64) {
        assert!(
            !t.is_nan() && !value.is_nan(),
            "series points must not be NaN"
        );
        if let Some(&(last_t, _)) = self.points.last() {
            assert!(t >= last_t, "series times must be non-decreasing");
        }
        self.points.push((t, value));
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The underlying points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Iterates over the values.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Maximum value, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Minimum value, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values()
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Mean value, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.values().sum::<f64>() / self.len() as f64)
        }
    }

    /// The last value, or `None` if empty.
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// The value of the latest point with time ≤ `t`, or `None` if `t`
    /// precedes the series.
    #[must_use]
    pub fn value_at_or_before(&self, t: f64) -> Option<f64> {
        match self
            .points
            .binary_search_by(|&(pt, _)| pt.partial_cmp(&t).expect("no NaN"))
        {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// The sub-series with time ≥ `t0` (for steady-state analysis).
    #[must_use]
    pub fn after(&self, t0: f64) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .iter()
                .copied()
                .filter(|&(t, _)| t >= t0)
                .collect(),
        }
    }
}

impl fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeSeries(len={}, max={:?})", self.len(), self.max())
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        TimeSeries::from_points(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_queries() {
        let s: TimeSeries = vec![(0.0, 2.0), (1.0, -1.0), (2.0, 5.0)]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.last(), Some(5.0));
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.value_at_or_before(1.0), None);
    }

    #[test]
    fn lookup_by_time() {
        let s = TimeSeries::from_points(vec![(1.0, 10.0), (2.0, 20.0), (4.0, 40.0)]);
        assert_eq!(s.value_at_or_before(0.5), None);
        assert_eq!(s.value_at_or_before(1.0), Some(10.0));
        assert_eq!(s.value_at_or_before(3.0), Some(20.0));
        assert_eq!(s.value_at_or_before(9.0), Some(40.0));
    }

    #[test]
    fn after_filters_prefix() {
        let s = TimeSeries::from_points(vec![(0.0, 9.0), (5.0, 1.0), (6.0, 2.0)]);
        let tail = s.after(4.9);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.max(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_regression() {
        let mut s = TimeSeries::new();
        s.push(1.0, 0.0);
        s.push(0.5, 0.0);
    }

    #[test]
    fn equal_times_allowed() {
        let mut s = TimeSeries::new();
        s.push(1.0, 0.0);
        s.push(1.0, 1.0);
        assert_eq!(s.len(), 2);
    }
}
