//! Summary statistics and curve fitting.

/// Summary of a sample: count, extremes, mean, and selected quantiles.
///
/// # Examples
///
/// ```
/// use ftgcs_metrics::stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count, 4);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.mean, 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Computes a summary of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    #[must_use]
    pub fn of(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "cannot summarize an empty sample");
        assert!(data.iter().all(|x| !x.is_nan()), "samples must not be NaN");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Summary {
            count: data.len(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: data.iter().sum::<f64>() / data.len() as f64,
            median: quantile_sorted(&sorted, 0.5),
            p95: quantile_sorted(&sorted, 0.95),
        }
    }
}

/// Quantile (linear interpolation) of already-sorted data, `q ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Quantile of unsorted data.
///
/// # Panics
///
/// Panics if `data` is empty, contains NaN, or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(data: &[f64], q: f64) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    quantile_sorted(&sorted, q)
}

/// Result of a least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² (1 = perfect fit).
    pub r_squared: f64,
}

/// Least-squares line fit through `(x, y)` points.
///
/// # Panics
///
/// Panics with fewer than two points or when all `x` coincide.
#[must_use]
pub fn fit_line(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-30, "degenerate x values");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LineFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits `y ≈ a·log2(x) + b`, returning the fit in log-x coordinates.
///
/// Useful for verifying the paper's `O(κ·log D)` local-skew scaling.
///
/// # Panics
///
/// Panics if any `x ≤ 0` or fewer than two points are given.
#[must_use]
pub fn fit_log2(points: &[(f64, f64)]) -> LineFit {
    let transformed: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0, "log fit requires positive x");
            (x.log2(), y)
        })
        .collect();
    fit_line(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert!((s.p95 - 4.8).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [0.0, 10.0];
        assert_eq!(quantile(&data, 0.0), 0.0);
        assert_eq!(quantile(&data, 0.5), 5.0);
        assert_eq!(quantile(&data, 1.0), 10.0);
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn perfect_line_fit() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let fit = fit_line(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_reasonable() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                (x, 2.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            })
            .collect();
        let fit = fit_line(&pts);
        assert!((fit.slope - 2.0).abs() < 0.02);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn log_fit_recovers_log_scaling() {
        let pts: Vec<(f64, f64)> = [2.0f64, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&d| (d, 5.0 * d.log2() + 2.0))
            .collect();
        let fit = fit_log2(&pts);
        assert!((fit.slope - 5.0).abs() < 1e-9);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
    }

    #[test]
    fn constant_y_has_unit_r_squared() {
        let fit = fit_line(&[(0.0, 2.0), (1.0, 2.0), (2.0, 2.0)]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }
}
