//! # ftgcs-metrics — skew analysis for clock-synchronization traces
//!
//! Turns the raw [`ftgcs_sim::trace::Trace`] of a simulation run into the
//! quantities the paper bounds:
//!
//! * [`skew::local_skew_series`] / [`skew::global_skew_series`] — skew over
//!   physical edges and over all correct nodes;
//! * [`skew::cluster_clock_samples`] / [`skew::cluster_local_skew_series`] —
//!   the paper's cluster clocks `(L⁺+L⁻)/2` and their gradient skew;
//! * [`skew::intra_cluster_skew_series`] — Corollary 3.2's quantity;
//! * [`skew::pulse_diameters`] — `‖p_C(r)‖` per round (Definition B.7);
//! * [`stats`] — summaries and line/log fits for scaling experiments;
//! * [`table`] — ASCII/CSV rendering of experiment results.
//!
//! ```
//! use ftgcs_metrics::series::TimeSeries;
//! use ftgcs_metrics::stats::fit_log2;
//!
//! // A local-skew-vs-diameter curve that scales like 3·log2(D):
//! let curve: Vec<(f64, f64)> = [2.0f64, 4.0, 8.0, 16.0]
//!     .iter().map(|&d| (d, 3.0 * d.log2())).collect();
//! assert!((fit_log2(&curve).slope - 3.0).abs() < 1e-9);
//! # let _ = TimeSeries::new();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Unsafety discipline (enforced by `ftgcs-lint`): this crate must
// compile with no `unsafe` at all; the one sanctioned unsafe region in
// the workspace is `ftgcs-sim`'s parallel executor (sim/src/par.rs).
#![deny(unsafe_code)]
// Library output goes through return values and the `Observer` sink,
// never the process streams (enforced by `ftgcs-lint` and clippy).
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod series;
pub mod skew;
pub mod stats;
pub mod stream;
pub mod table;

pub use series::TimeSeries;
pub use skew::FaultMask;
pub use stats::{LineFit, Summary};
pub use table::Table;
