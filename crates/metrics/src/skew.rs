//! Skew extraction from simulation traces.
//!
//! All quantities follow the paper's definitions, restricted to *correct*
//! nodes (skew between or relative to Byzantine nodes is meaningless):
//!
//! * **local skew** — `max |L_v − L_w|` over edges of a given graph;
//! * **global skew** — `max_{v,w} |L_v − L_w|` over all correct nodes;
//! * **cluster clock** — `L_C = (L⁺_C + L⁻_C)/2` (Definition 3.3);
//! * **intra-cluster skew** — `L⁺_C − L⁻_C`;
//! * **pulse diameter** — `‖p_C(r)‖ = max p_C(r) − min p_C(r)`
//!   (Definition B.7), extracted from `"pulse"` trace rows.

use crate::series::TimeSeries;
use ftgcs_sim::trace::Trace;
use ftgcs_topology::{ClusterGraph, Graph};

/// Which nodes are faulty (dense mask over node ids).
///
/// # Examples
///
/// ```
/// use ftgcs_metrics::skew::FaultMask;
///
/// let mask = FaultMask::from_nodes(5, &[1, 3]);
/// assert!(mask.is_faulty(1));
/// assert!(!mask.is_faulty(0));
/// assert_eq!(mask.correct_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMask {
    faulty: Vec<bool>,
}

impl FaultMask {
    /// A mask with no faulty nodes.
    #[must_use]
    pub fn none(n: usize) -> Self {
        FaultMask {
            faulty: vec![false; n],
        }
    }

    /// A mask marking the listed node ids faulty.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    #[must_use]
    pub fn from_nodes(n: usize, nodes: &[usize]) -> Self {
        let mut mask = FaultMask::none(n);
        for &v in nodes {
            assert!(v < n, "faulty node id {v} out of range");
            mask.faulty[v] = true;
        }
        mask
    }

    /// Whether node `v` is faulty; out-of-range ids count as correct.
    #[must_use]
    pub fn is_faulty(&self, v: usize) -> bool {
        self.faulty.get(v).copied().unwrap_or(false)
    }

    /// Number of nodes covered by the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faulty.len()
    }

    /// Whether the mask covers zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faulty.is_empty()
    }

    /// Number of correct nodes.
    #[must_use]
    pub fn correct_count(&self) -> usize {
        self.faulty.iter().filter(|&&f| !f).count()
    }

    /// Ids of the faulty nodes.
    #[must_use]
    pub fn faulty_nodes(&self) -> Vec<usize> {
        (0..self.len()).filter(|&v| self.faulty[v]).collect()
    }
}

/// Local skew over the edges of `graph` at each trace sample.
///
/// Edges with a faulty endpoint are skipped; samples with no eligible edge
/// are omitted.
#[must_use]
pub fn local_skew_series(trace: &Trace, graph: &Graph, faulty: &FaultMask) -> TimeSeries {
    let edges: Vec<(usize, usize)> = graph
        .edges()
        .filter(|&(a, b)| !faulty.is_faulty(a) && !faulty.is_faulty(b))
        .collect();
    let mut series = TimeSeries::new();
    for s in &trace.samples {
        let mut max_skew: Option<f64> = None;
        for &(a, b) in &edges {
            let skew = (s.logical[a] - s.logical[b]).abs();
            max_skew = Some(max_skew.map_or(skew, |m| m.max(skew)));
        }
        if let Some(m) = max_skew {
            series.push(s.t.as_secs(), m);
        }
    }
    series
}

/// Global skew (max − min logical clock over correct nodes) at each sample.
#[must_use]
pub fn global_skew_series(trace: &Trace, faulty: &FaultMask) -> TimeSeries {
    let mut series = TimeSeries::new();
    for s in &trace.samples {
        let correct = s
            .logical
            .iter()
            .enumerate()
            .filter(|&(v, _)| !faulty.is_faulty(v))
            .map(|(_, &l)| l);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for l in correct {
            min = min.min(l);
            max = max.max(l);
        }
        if min.is_finite() {
            series.push(s.t.as_secs(), max - min);
        }
    }
    series
}

/// Per-cluster clock values `L_C = (L⁺_C + L⁻_C)/2` at each sample.
///
/// Returns `(t, clocks)` pairs; clusters whose correct membership is empty
/// yield NaN (callers should treat such clusters as failed).
#[must_use]
pub fn cluster_clock_samples(
    trace: &Trace,
    cg: &ClusterGraph,
    faulty: &FaultMask,
) -> Vec<(f64, Vec<f64>)> {
    trace
        .samples
        .iter()
        .map(|s| {
            let clocks = (0..cg.cluster_count())
                .map(|c| {
                    let mut min = f64::INFINITY;
                    let mut max = f64::NEG_INFINITY;
                    for v in cg.members(c) {
                        if !faulty.is_faulty(v) {
                            min = min.min(s.logical[v]);
                            max = max.max(s.logical[v]);
                        }
                    }
                    if min.is_finite() {
                        (min + max) / 2.0
                    } else {
                        f64::NAN
                    }
                })
                .collect();
            (s.t.as_secs(), clocks)
        })
        .collect()
}

/// Local skew between *cluster clocks* over base-graph edges (the quantity
/// bounded by Theorem 4.10) at each sample.
#[must_use]
pub fn cluster_local_skew_series(
    trace: &Trace,
    cg: &ClusterGraph,
    faulty: &FaultMask,
) -> TimeSeries {
    let edges: Vec<(usize, usize)> = cg.base().edges().collect();
    let mut series = TimeSeries::new();
    for (t, clocks) in cluster_clock_samples(trace, cg, faulty) {
        let mut max_skew: Option<f64> = None;
        for &(a, b) in &edges {
            if clocks[a].is_nan() || clocks[b].is_nan() {
                continue;
            }
            let skew = (clocks[a] - clocks[b]).abs();
            max_skew = Some(max_skew.map_or(skew, |m| m.max(skew)));
        }
        if let Some(m) = max_skew {
            series.push(t, m);
        }
    }
    series
}

/// The worst intra-cluster skew `max_C (L⁺_C − L⁻_C)` at each sample (the
/// quantity bounded by Corollary 3.2).
#[must_use]
pub fn intra_cluster_skew_series(
    trace: &Trace,
    cg: &ClusterGraph,
    faulty: &FaultMask,
) -> TimeSeries {
    let mut series = TimeSeries::new();
    for s in &trace.samples {
        let mut worst: Option<f64> = None;
        for c in 0..cg.cluster_count() {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for v in cg.members(c) {
                if !faulty.is_faulty(v) {
                    min = min.min(s.logical[v]);
                    max = max.max(s.logical[v]);
                }
            }
            if min.is_finite() {
                let skew = max - min;
                worst = Some(worst.map_or(skew, |w| w.max(skew)));
            }
        }
        if let Some(w) = worst {
            series.push(s.t.as_secs(), w);
        }
    }
    series
}

/// Pulse diameters `‖p_C(r)‖` per cluster and round, extracted from trace
/// rows of the given kind (by convention `"pulse"`, emitted with
/// `values = [cluster, round]` at the Newtonian send time).
///
/// Returns `result[cluster][round-1] = Some(diameter)` for every round in
/// which at least one correct member pulsed.
#[must_use]
pub fn pulse_diameters(
    trace: &Trace,
    cg: &ClusterGraph,
    faulty: &FaultMask,
    kind: &str,
) -> Vec<Vec<Option<f64>>> {
    // (cluster, round) -> (min_t, max_t)
    let mut extremes: Vec<Vec<Option<(f64, f64)>>> = vec![Vec::new(); cg.cluster_count()];
    for row in trace.rows_of_kind(kind) {
        if faulty.is_faulty(row.node.index()) {
            continue;
        }
        let cluster = row.values[0] as usize;
        let round = row.values[1] as usize;
        assert!(round >= 1, "rounds are 1-indexed");
        let t = row.t.as_secs();
        let per_cluster = &mut extremes[cluster];
        if per_cluster.len() < round {
            per_cluster.resize(round, None);
        }
        let slot = &mut per_cluster[round - 1];
        *slot = Some(match *slot {
            None => (t, t),
            Some((lo, hi)) => (lo.min(t), hi.max(t)),
        });
    }
    extremes
        .into_iter()
        .map(|rounds| {
            rounds
                .into_iter()
                .map(|e| e.map(|(lo, hi)| hi - lo))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgcs_sim::node::NodeId;
    use ftgcs_sim::time::SimTime;
    use ftgcs_sim::trace::{ClockSample, Row};
    use ftgcs_topology::generators::line;

    fn trace_with(samples: Vec<(f64, Vec<f64>)>) -> Trace {
        Trace {
            samples: samples
                .into_iter()
                .map(|(t, logical)| ClockSample {
                    hardware: logical.clone(),
                    t: SimTime::from_secs(t),
                    logical,
                })
                .collect(),
            rows: Vec::new(),
        }
    }

    #[test]
    fn fault_mask_basics() {
        let m = FaultMask::none(3);
        assert_eq!(m.correct_count(), 3);
        assert!(!m.is_empty());
        assert!(m.faulty_nodes().is_empty());
        let m = FaultMask::from_nodes(4, &[2]);
        assert_eq!(m.faulty_nodes(), vec![2]);
        assert!(!m.is_faulty(99));
    }

    #[test]
    fn local_skew_over_line() {
        let g = line(3);
        let trace = trace_with(vec![(0.0, vec![0.0, 0.0, 0.0]), (1.0, vec![1.0, 1.2, 1.1])]);
        let s = local_skew_series(&trace, &g, &FaultMask::none(3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[0].1, 0.0);
        assert!((s.points()[1].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn local_skew_skips_faulty_endpoints() {
        let g = line(3);
        let trace = trace_with(vec![(0.0, vec![0.0, 100.0, 0.1])]);
        let faulty = FaultMask::from_nodes(3, &[1]);
        // Both edges touch node 1 → no eligible edges → empty series.
        let s = local_skew_series(&trace, &g, &faulty);
        assert!(s.is_empty());
    }

    #[test]
    fn global_skew_excludes_faulty() {
        let trace = trace_with(vec![(0.0, vec![1.0, 50.0, 1.5])]);
        let all = global_skew_series(&trace, &FaultMask::none(3));
        assert_eq!(all.last(), Some(49.0));
        let masked = global_skew_series(&trace, &FaultMask::from_nodes(3, &[1]));
        assert!((masked.last().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cluster_clocks_are_midpoints() {
        let cg = ClusterGraph::new(line(2), 4, 1);
        // Cluster 0: values 0,1,2,3 → midpoint 1.5; cluster 1: all 10 → 10.
        let trace = trace_with(vec![(
            0.0,
            vec![0.0, 1.0, 2.0, 3.0, 10.0, 10.0, 10.0, 10.0],
        )]);
        let clocks = cluster_clock_samples(&trace, &cg, &FaultMask::none(8));
        assert_eq!(clocks.len(), 1);
        assert!((clocks[0].1[0] - 1.5).abs() < 1e-12);
        assert!((clocks[0].1[1] - 10.0).abs() < 1e-12);
        // Excluding the extreme member changes the midpoint.
        let masked = cluster_clock_samples(&trace, &cg, &FaultMask::from_nodes(8, &[3]));
        assert!((masked[0].1[0] - 1.0).abs() < 1e-12);
        let skew = cluster_local_skew_series(&trace, &cg, &FaultMask::none(8));
        assert!((skew.last().unwrap() - 8.5).abs() < 1e-12);
    }

    #[test]
    fn intra_cluster_skew_takes_worst_cluster() {
        let cg = ClusterGraph::new(line(2), 4, 1);
        let trace = trace_with(vec![(0.0, vec![0.0, 0.1, 0.2, 0.3, 5.0, 5.0, 5.0, 6.0])]);
        let s = intra_cluster_skew_series(&trace, &cg, &FaultMask::none(8));
        assert!((s.last().unwrap() - 1.0).abs() < 1e-12);
        let masked = intra_cluster_skew_series(&trace, &cg, &FaultMask::from_nodes(8, &[7]));
        assert!((masked.last().unwrap() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn pulse_diameter_extraction() {
        let cg = ClusterGraph::new(line(1), 4, 1);
        let mut trace = trace_with(vec![]);
        let pulses = [
            (0, 1.00, 1usize),
            (1, 1.01, 1),
            (2, 1.02, 1),
            (3, 1.50, 1), // faulty outlier
            (0, 2.00, 2),
            (1, 2.02, 2),
            (2, 2.01, 2),
        ];
        for (node, t, round) in pulses {
            trace.rows.push(Row {
                t: SimTime::from_secs(t),
                node: NodeId(node),
                kind: "pulse",
                values: vec![0.0, round as f64],
            });
        }
        let faulty = FaultMask::from_nodes(4, &[3]);
        let d = pulse_diameters(&trace, &cg, &faulty, "pulse");
        assert_eq!(d.len(), 1);
        assert!((d[0][0].unwrap() - 0.02).abs() < 1e-12);
        assert!((d[0][1].unwrap() - 0.02).abs() < 1e-12);
        // Including the faulty node inflates round 1.
        let d_all = pulse_diameters(&trace, &cg, &FaultMask::none(4), "pulse");
        assert!((d_all[0][0].unwrap() - 0.5).abs() < 1e-12);
    }
}
