//! ASCII table and CSV formatting for experiment output.

use std::fmt::Write as _;

/// A simple right-aligned ASCII table builder.
///
/// # Examples
///
/// ```
/// use ftgcs_metrics::table::Table;
///
/// let mut t = Table::new(&["D", "local skew"]);
/// t.row(&["4".into(), "0.012".into()]);
/// t.row(&["8".into(), "0.016".into()]);
/// let s = t.render();
/// assert!(s.contains("local skew"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no headers are given.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "tables need at least one column");
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of formatted floats (6 significant
    /// digits) prefixed by a label.
    ///
    /// # Panics
    ///
    /// Panics if `1 + values.len()` differs from the header width.
    pub fn row_labeled(&mut self, label: &str, values: &[f64]) {
        let mut cells = vec![label.to_owned()];
        cells.extend(values.iter().map(|v| format_sig(*v)));
        self.row(&cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 6 significant digits, using scientific notation for
/// very large/small magnitudes.
#[must_use]
pub fn format_sig(v: f64) -> String {
    if v == 0.0 {
        return "0".to_owned();
    }
    let a = v.abs();
    if !(1e-4..1e7).contains(&a) {
        format!("{v:.4e}")
    } else {
        let digits = (6 - (a.log10().floor() as i32) - 1).clamp(0, 9) as usize;
        format!("{v:.digits$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2.5".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal length (aligned).
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a,b", "c"]);
        t.row(&["x\"y".into(), "1".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn labeled_rows_format_floats() {
        let mut t = Table::new(&["case", "x", "y"]);
        t.row_labeled("run1", &[0.000123456, 123456.789]);
        let csv = t.to_csv();
        assert!(csv.contains("run1"), "{csv}");
        assert!(csv.contains("0.000123456"), "{csv}");
    }

    #[test]
    fn sig_format_edges() {
        assert_eq!(format_sig(0.0), "0");
        assert_eq!(format_sig(1.0), "1.00000");
        assert!(format_sig(1e-9).contains('e'));
        assert!(format_sig(-3.25e9).contains('e'));
        assert_eq!(format_sig(123456.7), "123457");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
