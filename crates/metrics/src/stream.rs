//! Bounded-memory streaming observers.
//!
//! The classic analysis path materializes a full
//! [`Trace`](ftgcs_sim::trace::Trace) — every clock sample and row in
//! `Vec`s — and post-processes it with the [`crate::skew`] functions.
//! That caps run length by memory. The observers here implement
//! [`Observer`] and keep **O(nodes) state** regardless of run length,
//! so hour-long million-event runs stream through them:
//!
//! * [`SkewStream`] — running max/mean global skew plus approximate
//!   quantiles from a fixed-size log-bucketed histogram;
//! * [`CsvSampleWriter`] — incremental samples CSV (optionally
//!   decimated), byte-identical at stride 1 to
//!   [`Trace::write_samples_csv`](ftgcs_sim::trace::Trace::write_samples_csv);
//! * [`RowCounter`] — row counts per kind.
//!
//! Combine several with [`ftgcs_sim::observe::Fanout`].

use std::collections::BTreeMap;
use std::io::{self, Write};

use ftgcs_sim::engine::SimStats;
use ftgcs_sim::observe::Observer;
use ftgcs_sim::trace::{ClockSample, Row};

use crate::skew::FaultMask;

/// Histogram floor: values at or below this land in bucket 0.
const HIST_MIN: f64 = 1e-12;
/// Buckets per decade of the log-scaled histogram.
const BUCKETS_PER_DECADE: usize = 64;
/// Decades covered: `[1e-12, 1e3)`.
const DECADES: usize = 15;
/// Total bucket count (fixed — the memory bound of the accumulator).
const BUCKETS: usize = BUCKETS_PER_DECADE * DECADES;

/// A fixed-size, log-bucketed histogram over positive values.
///
/// Memory is a constant `BUCKETS` counters; quantiles are approximate
/// (resolution ≈ 3.7% relative, one bucket of 1/64 decade), which is
/// ample for skew summaries spanning many orders of magnitude.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    /// Values above the covered range (counted; quantiles landing in
    /// this tail report the largest such value).
    overflow: u64,
    /// Largest overflowed value seen (meaningful when `overflow > 0`).
    overflow_max: f64,
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: Box::new([0; BUCKETS]),
            overflow: 0,
            overflow_max: f64::NEG_INFINITY,
            total: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram::default()
    }

    fn bucket(value: f64) -> Option<usize> {
        if value <= HIST_MIN {
            return Some(0);
        }
        let pos = (value.log10() + 12.0) * BUCKETS_PER_DECADE as f64;
        if pos < 0.0 {
            Some(0)
        } else if pos as usize >= BUCKETS {
            None
        } else {
            Some(pos as usize)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        match Self::bucket(value) {
            Some(b) => self.counts[b] += 1,
            None => {
                self.overflow += 1;
                self.overflow_max = self.overflow_max.max(value);
            }
        }
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`) as the geometric midpoint
    /// of the bucket containing the rank, or `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = -12.0 + b as f64 / BUCKETS_PER_DECADE as f64;
                let hi = lo + 1.0 / BUCKETS_PER_DECADE as f64;
                return Some(10f64.powf((lo + hi) / 2.0));
            }
        }
        // Rank falls into the overflow tail: report the largest value
        // seen there (a finite answer for summaries, unlike the bucket
        // midpoints only an upper bound by at most itself).
        Some(self.overflow_max)
    }
}

/// Streaming global-skew accumulator: O(1) state per statistic, fed one
/// [`ClockSample`] at a time.
///
/// Computes, over correct nodes ([`FaultMask`]) and after an optional
/// warm-up, the running max / mean / sample count of the global skew
/// (max − min logical clock) plus approximate quantiles. Equivalent to
/// materializing the trace and running
/// [`crate::skew::global_skew_series`] + max/mean — pinned by this
/// module's tests — but in constant memory.
///
/// # Examples
///
/// ```
/// use ftgcs_metrics::skew::FaultMask;
/// use ftgcs_metrics::stream::SkewStream;
/// use ftgcs_sim::observe::Observer;
/// use ftgcs_sim::time::SimTime;
/// use ftgcs_sim::trace::ClockSample;
///
/// let mut acc = SkewStream::new(FaultMask::none(2));
/// acc.on_sample(&ClockSample {
///     t: SimTime::from_secs(1.0),
///     logical: vec![1.0, 1.25],
///     hardware: vec![1.0, 1.0],
/// });
/// assert_eq!(acc.max(), Some(0.25));
/// ```
#[derive(Debug, Clone)]
pub struct SkewStream {
    mask: FaultMask,
    /// Samples before this Newtonian time are ignored (transient).
    warmup: f64,
    count: u64,
    sum: f64,
    max: f64,
    /// Time of the maximal sample (diagnostics).
    max_at: f64,
    last: f64,
    hist: LogHistogram,
}

impl SkewStream {
    /// A fresh accumulator over the correct nodes of `mask`.
    #[must_use]
    pub fn new(mask: FaultMask) -> Self {
        SkewStream {
            mask,
            warmup: 0.0,
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
            max_at: 0.0,
            last: f64::NAN,
            hist: LogHistogram::new(),
        }
    }

    /// Ignores samples before `secs` (the standard post-warmup
    /// measurement window).
    #[must_use]
    pub fn with_warmup(mut self, secs: f64) -> Self {
        self.warmup = secs;
        self
    }

    /// Number of samples accumulated (post-warmup).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running maximum skew, if any sample arrived.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Newtonian time of the maximal sample.
    #[must_use]
    pub fn max_at(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max_at)
    }

    /// Running mean skew.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Skew of the most recent sample.
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        (self.count > 0).then_some(self.last)
    }

    /// Approximate `q`-quantile of the skew distribution.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist.quantile(q)
    }
}

impl Observer for SkewStream {
    fn on_sample(&mut self, sample: &ClockSample) {
        if sample.t.as_secs() < self.warmup {
            return;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (v, &l) in sample.logical.iter().enumerate() {
            if !self.mask.is_faulty(v) {
                min = min.min(l);
                max = max.max(l);
            }
        }
        if !min.is_finite() {
            return; // no correct nodes
        }
        let skew = max - min;
        self.count += 1;
        self.sum += skew;
        self.last = skew;
        if skew > self.max {
            self.max = skew;
            self.max_at = sample.t.as_secs();
        }
        self.hist.record(skew);
    }
}

/// Streaming CSV writer for clock samples.
///
/// Emits the identical format as
/// [`Trace::write_samples_csv`](ftgcs_sim::trace::Trace::write_samples_csv)
/// (`t,n0,n1,…` header then one line per sample) but incrementally, so
/// no sample is ever held in memory. A `stride > 1` decimates: every
/// stride-th sample is written (the windowed form used by long-horizon
/// runs, where full-rate CSV would dwarf the simulation itself).
///
/// I/O errors are deferred: the writer records the first error and
/// [`CsvSampleWriter::finish`] (or [`Observer::on_finish`]) surfaces
/// it; the observer callbacks themselves stay infallible.
pub struct CsvSampleWriter<W: Write> {
    out: io::BufWriter<W>,
    stride: usize,
    seen: usize,
    written: usize,
    header_done: bool,
    error: Option<io::Error>,
}

impl<W: Write> std::fmt::Debug for CsvSampleWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CsvSampleWriter(stride={}, written={})",
            self.stride, self.written
        )
    }
}

impl CsvSampleWriter<std::fs::File> {
    /// Creates (truncating) `path` and streams samples into it.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &std::path::Path, stride: usize) -> io::Result<Self> {
        Ok(CsvSampleWriter::new(std::fs::File::create(path)?, stride))
    }
}

impl<W: Write> CsvSampleWriter<W> {
    /// Wraps a writer; `stride` of 1 writes every sample.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn new(out: W, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        CsvSampleWriter {
            out: io::BufWriter::new(out),
            stride,
            seen: 0,
            written: 0,
            header_done: false,
            error: None,
        }
    }

    /// Samples written (after decimation).
    #[must_use]
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes and surfaces any deferred I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error hit during streaming or the flush.
    pub fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }

    fn try_write(&mut self, sample: &ClockSample) -> io::Result<()> {
        if !self.header_done {
            self.header_done = true;
            write!(self.out, "t")?;
            for i in 0..sample.logical.len() {
                write!(self.out, ",n{i}")?;
            }
            writeln!(self.out)?;
        }
        write!(self.out, "{}", sample.t.as_secs())?;
        for v in &sample.logical {
            write!(self.out, ",{v}")?;
        }
        writeln!(self.out)?;
        self.written += 1;
        Ok(())
    }
}

impl<W: Write> Observer for CsvSampleWriter<W> {
    fn on_sample(&mut self, sample: &ClockSample) {
        let due = self.seen.is_multiple_of(self.stride);
        self.seen += 1;
        if !due || self.error.is_some() {
            return;
        }
        if let Err(e) = self.try_write(sample) {
            self.error = Some(e);
        }
    }

    fn on_finish(&mut self, _stats: &SimStats) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Streaming row-count accumulator: one counter per row kind. Row
/// kinds are `&'static str` labels, so counting allocates nothing on
/// the per-row hot path (beyond the map's one node per *distinct*
/// kind).
#[derive(Debug, Clone, Default)]
pub struct RowCounter {
    counts: BTreeMap<&'static str, u64>,
}

impl RowCounter {
    /// An empty counter.
    #[must_use]
    pub fn new() -> Self {
        RowCounter::default()
    }

    /// Count of rows of one kind seen so far.
    #[must_use]
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// All `(kind, count)` pairs, sorted by kind.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }
}

impl Observer for RowCounter {
    fn on_row(&mut self, row: &Row) {
        *self.counts.entry(row.kind).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skew::global_skew_series;
    use ftgcs_sim::node::NodeId;
    use ftgcs_sim::time::SimTime;
    use ftgcs_sim::trace::Trace;

    fn sample(t: f64, logical: Vec<f64>) -> ClockSample {
        let hardware = logical.clone();
        ClockSample {
            t: SimTime::from_secs(t),
            logical,
            hardware,
        }
    }

    #[test]
    fn skew_stream_matches_materialized_series() {
        let samples = vec![
            sample(0.0, vec![0.0, 0.1, 0.05]),
            sample(1.0, vec![1.0, 1.3, 1.1]),
            sample(2.0, vec![2.0, 2.05, 2.2]),
        ];
        let trace = Trace {
            samples: samples.clone(),
            rows: Vec::new(),
        };
        let mask = FaultMask::none(3);
        let series = global_skew_series(&trace, &mask);

        let mut acc = SkewStream::new(mask);
        for s in &samples {
            acc.on_sample(s);
        }
        assert_eq!(acc.count(), 3);
        assert_eq!(acc.max(), series.max());
        let mean = series.values().sum::<f64>() / series.len() as f64;
        assert!((acc.mean().unwrap() - mean).abs() < 1e-15);
        assert_eq!(acc.max_at(), Some(1.0));
        assert!((acc.last().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn skew_stream_respects_mask_and_warmup() {
        let mask = FaultMask::from_nodes(3, &[1]); // node 1 faulty
        let mut acc = SkewStream::new(mask).with_warmup(0.5);
        acc.on_sample(&sample(0.0, vec![0.0, 100.0, 0.2])); // pre-warmup
        acc.on_sample(&sample(1.0, vec![1.0, 100.0, 1.1]));
        assert_eq!(acc.count(), 1);
        // Faulty node 1 excluded: skew is |1.1 - 1.0|.
        assert!((acc.max().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_order_of_magnitude_accurate() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(f64::from(i) * 1e-6);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((4e-4..6e-4).contains(&p50), "p50 {p50} should be near 5e-4");
        let p99 = h.quantile(0.99).unwrap();
        assert!(
            (9e-4..1.1e-3).contains(&p99),
            "p99 {p99} should be near 1e-3"
        );
        assert_eq!(h.count(), 1000);
        assert_eq!(LogHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn histogram_overflow_tail_reports_the_finite_max() {
        // Values above the covered decades (>= 1e3) land in the
        // overflow tail; quantiles falling there must report the
        // largest such value, not infinity (summary CSVs print them).
        let mut h = LogHistogram::new();
        h.record(5e3);
        h.record(2e4);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.99), Some(2e4));
        assert!(h.quantile(0.5).unwrap().is_finite());
    }

    #[test]
    fn csv_writer_matches_trace_csv_at_stride_one() {
        let samples = vec![
            sample(0.0, vec![0.0, 0.0]),
            sample(0.5, vec![0.5, 0.51]),
            sample(1.0, vec![1.0, 1.1]),
        ];
        let trace = Trace {
            samples: samples.clone(),
            rows: Vec::new(),
        };
        let mut reference = Vec::new();
        trace.write_samples_csv(&mut reference).unwrap();

        let mut streamed = CsvSampleWriter::new(Vec::new(), 1);
        for s in &samples {
            streamed.on_sample(s);
        }
        streamed.finish().unwrap();
        assert_eq!(streamed.written(), 3);
        assert_eq!(streamed.out.into_inner().unwrap(), reference);
    }

    #[test]
    fn csv_writer_decimates_by_stride() {
        let mut w = CsvSampleWriter::new(Vec::new(), 2);
        for i in 0..5 {
            w.on_sample(&sample(f64::from(i), vec![0.0]));
        }
        w.finish().unwrap();
        assert_eq!(w.written(), 3); // samples 0, 2, 4
        let text = String::from_utf8(w.out.into_inner().unwrap()).unwrap();
        assert_eq!(text.lines().count(), 4); // header + 3
    }

    #[test]
    fn row_counter_counts_by_kind() {
        let mut c = RowCounter::new();
        for kind in ["pulse", "round", "pulse"] {
            c.on_row(&Row {
                t: SimTime::ZERO,
                node: NodeId(0),
                kind,
                values: vec![],
            });
        }
        assert_eq!(c.count("pulse"), 2);
        assert_eq!(c.count("round"), 1);
        assert_eq!(c.count("nope"), 0);
        assert_eq!(c.iter().count(), 2);
    }
}
