//! The multi-process cell executor: a bounded job pool over
//! `xp run-cell` children, with retry-on-crash.
//!
//! Each cell runs in its own child process (std-only
//! [`std::process::Command`] + pipes): the canonical spec text goes in
//! on stdin, the cell's machine-readable product comes back on stdout,
//! and stderr (the `--progress` telemetry heartbeat) streams through a
//! caller-supplied callback. Because a cell is a pure function of its
//! spec text, a child that dies mid-run — OOM-killed, crashed,
//! machine fault — is simply re-spawned: the retry is byte-identical
//! to the run that would have been, so retries never change results.
//!
//! [`run_indexed`] is the pool: it executes `count` jobs over at most
//! `jobs` worker threads and delivers results **in index order** to a
//! completion callback, which is what lets `xp sweep --parallel` keep
//! its stdout byte-identical to the sequential in-process sweep.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How to reach the cell binary, and how persistent to be.
#[derive(Debug, Clone)]
pub struct CellRunner {
    /// The `xp` binary to spawn (`xp run-cell` children). The driver
    /// passes its own `current_exe`; tests pass `CARGO_BIN_EXE_xp`.
    pub binary: PathBuf,
    /// Extra spawn attempts after the first (so `retries = 2` means at
    /// most three processes per cell).
    pub retries: u32,
}

/// One finished cell: the child's stdout plus how many processes the
/// cell actually cost (1 on the happy path; more after crashes).
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Child stdout of the successful attempt.
    pub stdout: String,
    /// Number of processes spawned (successful attempt included).
    pub attempts: u32,
}

impl CellRunner {
    /// Runs one `xp run-cell` child to completion, feeding
    /// `spec_text` on stdin and retrying on any non-zero exit. Each
    /// stderr line of the running attempt is passed to
    /// `on_stderr_line` (the service uses this to surface the
    /// telemetry heartbeat as job progress).
    ///
    /// # Errors
    ///
    /// Returns a message naming the exit status and the tail of the
    /// child's stderr once every attempt is exhausted.
    pub fn run_cell(
        &self,
        args: &[&str],
        spec_text: &str,
        on_stderr_line: Option<&(dyn Fn(&str) + Sync)>,
    ) -> Result<CellOutcome, String> {
        let max_attempts = self.retries.saturating_add(1);
        let mut last_error = String::new();
        for attempt in 1..=max_attempts {
            match self.run_once(args, spec_text, on_stderr_line) {
                Ok(stdout) => {
                    return Ok(CellOutcome {
                        stdout,
                        attempts: attempt,
                    });
                }
                Err(e) => last_error = e,
            }
        }
        Err(format!(
            "cell failed after {max_attempts} attempt(s): {last_error}"
        ))
    }

    /// One spawn: pipe the spec in, collect stdout, stream stderr.
    fn run_once(
        &self,
        args: &[&str],
        spec_text: &str,
        on_stderr_line: Option<&(dyn Fn(&str) + Sync)>,
    ) -> Result<String, String> {
        let mut child = Command::new(&self.binary)
            .arg("run-cell")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", self.binary.display()))?;

        // A child that dies before draining stdin surfaces as EPIPE
        // here; the exit status below is the authoritative verdict.
        if let Some(mut stdin) = child.stdin.take() {
            let _ = stdin.write_all(spec_text.as_bytes());
        }
        let mut stdout_pipe = child.stdout.take().expect("stdout was piped");
        let stderr_pipe = child.stderr.take().expect("stderr was piped");

        let mut stdout = String::new();
        let stderr_tail: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let mut stdout_err = None;
        // Stderr must be drained concurrently with stdout: a child
        // blocked writing a full stderr pipe would deadlock against a
        // parent blocked reading stdout.
        std::thread::scope(|s| {
            s.spawn(|| {
                for line in BufReader::new(stderr_pipe).lines() {
                    let Ok(line) = line else { break };
                    if let Some(cb) = on_stderr_line {
                        cb(&line);
                    }
                    let mut tail = stderr_tail.lock().expect("stderr tail lock");
                    if tail.len() >= 8 {
                        tail.remove(0);
                    }
                    tail.push(line);
                }
            });
            if let Err(e) = stdout_pipe.read_to_string(&mut stdout) {
                stdout_err = Some(e);
            }
        });
        let status = child.wait().map_err(|e| format!("wait: {e}"))?;
        if let Some(e) = stdout_err {
            return Err(format!("reading cell stdout: {e}"));
        }
        if status.success() {
            Ok(stdout)
        } else {
            let tail = stderr_tail.lock().expect("stderr tail lock").join(" | ");
            Err(format!("child exited with {status} (stderr: {tail})"))
        }
    }
}

/// Runs `count` jobs over a pool of at most `jobs` worker threads and
/// delivers every result — in **index order**, on the calling thread —
/// to `on_done` as it becomes deliverable. Returns all results, also
/// in index order.
///
/// All jobs run even if some fail: determinism makes every cell
/// independent, and the caller decides (after the fact, in order)
/// which failure to report. This keeps the pool free of abort
/// channels and keeps delivery order a pure function of the index.
pub fn run_indexed<T, F, D>(
    count: usize,
    jobs: usize,
    work: F,
    mut on_done: D,
) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> Result<T, String> + Sync,
    D: FnMut(usize, &Result<T, String>),
{
    if count == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, count);
    if jobs == 1 {
        // Inline fast path: no threads, same delivery contract.
        let mut out = Vec::with_capacity(count);
        for k in 0..count {
            let r = work(k);
            on_done(k, &r);
            out.push(r);
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<T, String>>>> =
        Mutex::new((0..count).map(|_| None).collect());
    let ready = Condvar::new();
    let mut delivered = Vec::with_capacity(count);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= count {
                    break;
                }
                let r = work(k);
                *slots
                    .lock()
                    .expect("pool slots lock")
                    .get_mut(k)
                    .expect("slot index") = Some(r);
                ready.notify_all();
            });
        }
        for k in 0..count {
            let mut guard = slots.lock().expect("pool slots lock");
            while guard[k].is_none() {
                guard = ready.wait(guard).expect("pool condvar wait");
            }
            let r = guard[k].take().expect("slot just checked");
            drop(guard);
            on_done(k, &r);
            delivered.push(r);
        }
    });
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_delivers_in_index_order_regardless_of_finish_order() {
        // Later indices finish first (they sleep less), but delivery
        // and the returned vec stay in index order.
        let mut seen = Vec::new();
        let results = run_indexed(
            8,
            4,
            |k| {
                std::thread::sleep(std::time::Duration::from_millis(5 * (8 - k as u64)));
                Ok(k * 10)
            },
            |k, r| seen.push((k, *r.as_ref().expect("job ok"))),
        );
        assert_eq!(seen, (0..8).map(|k| (k, k * 10)).collect::<Vec<_>>());
        assert_eq!(results.len(), 8);
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn pool_runs_every_job_even_after_failures() {
        let results = run_indexed(
            5,
            2,
            |k| {
                if k == 1 {
                    Err("boom".to_string())
                } else {
                    Ok(k)
                }
            },
            |_, _| {},
        );
        assert_eq!(results.len(), 5);
        assert!(results[1].is_err());
        assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 4);
    }

    #[test]
    fn single_job_pool_runs_inline() {
        let results = run_indexed(3, 1, Ok, |_, _| {});
        assert_eq!(results.len(), 3);
    }
}
