//! The content-addressed result store: `results/cache/<key>/`.
//!
//! One directory per [`CellKey`], holding whatever artifacts the cell
//! produced (`row.tsv` for sweep rows; `stdout.txt`, `telemetry.json`,
//! and a `results/` subtree for full runs) plus a `DONE` marker.
//! Publication is atomic: artifacts are staged in a sibling temp
//! directory, the marker is written last, and a single `rename` flips
//! the entry live — a reader never observes a half-written entry, and
//! a crashed producer leaves only an unreferenced temp directory.
//!
//! Because a cell is a pure function of its canonical spec text (the
//! determinism contract), a populated entry never goes stale: a cache
//! hit is exactly as authoritative as a fresh run.

use std::io;
use std::path::{Path, PathBuf};

use crate::hash::CellKey;

/// Name of the completion marker inside a published entry.
const DONE_MARKER: &str = "DONE";

/// A content-addressed store rooted at some directory (by default
/// `results/cache`, overridable with `FTGCS_CACHE_DIR`).
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// A store rooted at `root` (created lazily on first write).
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ResultStore { root: root.into() }
    }

    /// The store named by `FTGCS_CACHE_DIR`, defaulting to
    /// `results/cache` under the current working directory.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("FTGCS_CACHE_DIR") {
            Ok(dir) if !dir.is_empty() => ResultStore::new(dir),
            _ => ResultStore::new("results/cache"),
        }
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The (published) entry directory for `key`.
    #[must_use]
    pub fn entry_dir(&self, key: &CellKey) -> PathBuf {
        self.root.join(key.hex())
    }

    /// Whether a completed entry exists for `key`.
    #[must_use]
    pub fn is_done(&self, key: &CellKey) -> bool {
        self.entry_dir(key).join(DONE_MARKER).is_file()
    }

    /// Reads one artifact from a **completed** entry. `rel` must be a
    /// plain file name ([`artifact_name_ok`]); full runs may nest
    /// their CSVs under `results/`, so a name not found at the entry
    /// root is also looked up there.
    ///
    /// # Errors
    ///
    /// `NotFound` if the entry is absent/incomplete or the artifact
    /// does not exist; `InvalidInput` for a malformed name.
    pub fn read(&self, key: &CellKey, rel: &str) -> io::Result<Vec<u8>> {
        if !artifact_name_ok(rel) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid artifact name {rel:?}"),
            ));
        }
        if !self.is_done(key) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no completed entry for {key}"),
            ));
        }
        let dir = self.entry_dir(key);
        let direct = dir.join(rel);
        if direct.is_file() {
            return std::fs::read(direct);
        }
        std::fs::read(dir.join("results").join(rel))
    }

    /// Lists a completed entry's artifacts (entry root plus the
    /// `results/` subtree), sorted. Empty for absent entries.
    #[must_use]
    pub fn artifacts(&self, key: &CellKey) -> Vec<String> {
        let mut names = Vec::new();
        if !self.is_done(key) {
            return names;
        }
        let dir = self.entry_dir(key);
        for d in [dir.clone(), dir.join("results")] {
            let Ok(entries) = std::fs::read_dir(&d) else {
                continue;
            };
            for entry in entries.filter_map(Result::ok) {
                let name = entry.file_name().to_string_lossy().into_owned();
                if entry.path().is_file() && name != DONE_MARKER {
                    names.push(name);
                }
            }
        }
        names.sort();
        names
    }

    /// Opens a staging directory for `key`: a temp sibling the caller
    /// fills with artifacts, then [`Staging::publish`]es.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn begin(&self, key: &CellKey) -> io::Result<Staging> {
        // Process-id suffix keeps concurrent producer *processes* (two
        // sweeps, a sweep plus the service) apart; the sequence number
        // keeps concurrent stagings within one process apart.
        static STAGING_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = STAGING_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = self
            .root
            .join(format!(".tmp-{}-{}-{seq}", key.hex(), std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;
        Ok(Staging {
            dir,
            final_dir: self.entry_dir(key),
        })
    }
}

/// An in-progress cache entry; artifacts written under
/// [`Staging::dir`] become visible only after [`Staging::publish`].
#[derive(Debug)]
pub struct Staging {
    dir: PathBuf,
    final_dir: PathBuf,
}

impl Staging {
    /// The directory to write artifacts into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically publishes the staged artifacts: writes the `DONE`
    /// marker, then renames the staging directory into place. If a
    /// concurrent producer already published a completed entry —
    /// byte-identical by determinism — the staged copy is discarded.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn publish(self) -> io::Result<PathBuf> {
        std::fs::write(self.dir.join(DONE_MARKER), b"ok\n")?;
        if self.final_dir.join(DONE_MARKER).is_file() {
            std::fs::remove_dir_all(&self.dir)?;
            return Ok(self.final_dir);
        }
        if self.final_dir.exists() {
            // A stale incomplete entry (e.g. a producer killed between
            // rename steps in some earlier scheme): replace it.
            std::fs::remove_dir_all(&self.final_dir)?;
        }
        std::fs::rename(&self.dir, &self.final_dir)?;
        Ok(self.final_dir)
    }

    /// Drops the staged artifacts without publishing.
    pub fn discard(self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A safe artifact name: non-empty, no path separators, no leading
/// dot — a single plain file-name component, so request paths cannot
/// escape the entry directory.
#[must_use]
pub fn artifact_name_ok(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ftgcs_store_{}_{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_makes_entry_visible_atomically() {
        let store = ResultStore::new(scratch("publish"));
        let key = CellKey::from_parts(&["t", "a"]);
        assert!(!store.is_done(&key));
        let staging = store.begin(&key).unwrap();
        std::fs::write(staging.dir().join("row.tsv"), b"1\t2\n").unwrap();
        assert!(!store.is_done(&key), "staged entries must stay invisible");
        staging.publish().unwrap();
        assert!(store.is_done(&key));
        assert_eq!(store.read(&key, "row.tsv").unwrap(), b"1\t2\n");
        assert_eq!(store.artifacts(&key), vec!["row.tsv".to_string()]);
    }

    #[test]
    fn nested_results_artifacts_are_found() {
        let store = ResultStore::new(scratch("nested"));
        let key = CellKey::from_parts(&["t", "b"]);
        let staging = store.begin(&key).unwrap();
        std::fs::create_dir_all(staging.dir().join("results")).unwrap();
        std::fs::write(staging.dir().join("results/x_samples.csv"), b"t,v\n").unwrap();
        staging.publish().unwrap();
        assert_eq!(store.read(&key, "x_samples.csv").unwrap(), b"t,v\n");
        assert!(store.read(&key, "missing.csv").is_err());
    }

    #[test]
    fn racing_publishers_keep_the_first_entry() {
        let store = ResultStore::new(scratch("race"));
        let key = CellKey::from_parts(&["t", "c"]);
        let first = store.begin(&key).unwrap();
        std::fs::write(first.dir().join("row.tsv"), b"first\n").unwrap();
        let second = store.begin(&key).unwrap();
        std::fs::write(second.dir().join("row.tsv"), b"second\n").unwrap();
        first.publish().unwrap();
        second.publish().unwrap();
        // Determinism makes the two byte-identical in real use; the
        // store just has to keep exactly one completed entry.
        assert_eq!(store.read(&key, "row.tsv").unwrap(), b"first\n");
    }

    #[test]
    fn discard_leaves_no_entry() {
        let store = ResultStore::new(scratch("discard"));
        let key = CellKey::from_parts(&["t", "d"]);
        let staging = store.begin(&key).unwrap();
        std::fs::write(staging.dir().join("row.tsv"), b"x\n").unwrap();
        staging.discard();
        assert!(!store.is_done(&key));
    }

    #[test]
    fn artifact_names_cannot_escape() {
        assert!(artifact_name_ok("smoke_samples.csv"));
        assert!(artifact_name_ok("telemetry.json"));
        for bad in ["", "..", "../x", "a/b", ".hidden", "a\\b", "DONE extra?"] {
            assert!(!artifact_name_ok(bad), "accepted {bad:?}");
        }
        let store = ResultStore::new(scratch("escape"));
        let key = CellKey::from_parts(&["t", "e"]);
        assert!(store.read(&key, "../secrets").is_err());
    }
}
