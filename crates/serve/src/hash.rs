//! Content hashing for cells: hand-rolled 64-bit FNV-1a.
//!
//! A cell is keyed by its canonical spec printing (plus the driver
//! keys and an output-kind tag, folded in by the caller as separate
//! parts). FNV-1a is tiny, dependency-free, and — crucially for a
//! cache key — a pure function of its input bytes: no per-process
//! seeding, so the same spec hashes identically across runs, machines,
//! and processes. Parts are length-prefixed before folding so part
//! boundaries cannot alias (`["ab", "c"]` and `["a", "bc"]` differ).

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a state.
fn fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Raw 64-bit FNV-1a over one byte string.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    fold(FNV_OFFSET, bytes)
}

/// A content-derived cell identity: the cache directory name and the
/// job id served over HTTP.
///
/// Renders as 16 lowercase hex digits (`format!("{key}")` /
/// [`CellKey::hex`]); [`CellKey::parse_hex`] is the exact inverse, so
/// keys survive the URL round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey(u64);

impl CellKey {
    /// Hashes a sequence of parts, length-prefixed so boundaries
    /// cannot alias. Callers fold in, in order: a format-version tag,
    /// the output kind, and the canonical spec text.
    #[must_use]
    pub fn from_parts(parts: &[&str]) -> Self {
        let mut state = FNV_OFFSET;
        for part in parts {
            state = fold(state, &(part.len() as u64).to_le_bytes());
            state = fold(state, part.as_bytes());
        }
        CellKey(state)
    }

    /// The 16-digit lowercase hex rendering.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`CellKey::hex`] rendering back. Rejects anything
    /// that is not exactly 16 lowercase hex digits, so URL path
    /// segments cannot smuggle separators into cache paths.
    #[must_use]
    pub fn parse_hex(s: &str) -> Option<Self> {
        if s.len() != 16
            || !s
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(CellKey)
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn part_boundaries_do_not_alias() {
        assert_ne!(
            CellKey::from_parts(&["ab", "c"]),
            CellKey::from_parts(&["a", "bc"])
        );
        assert_ne!(
            CellKey::from_parts(&["ab"]),
            CellKey::from_parts(&["ab", ""])
        );
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        let key = CellKey::from_parts(&["v1", "row", "name demo\n"]);
        assert_eq!(CellKey::parse_hex(&key.hex()), Some(key));
        assert_eq!(key.hex().len(), 16);
        assert_eq!(CellKey::parse_hex(""), None);
        assert_eq!(CellKey::parse_hex("xyzw"), None);
        assert_eq!(CellKey::parse_hex("ABCDEF0123456789"), None); // uppercase
        assert_eq!(CellKey::parse_hex("../0123456789abc"), None);
    }
}
