//! A hand-rolled, deliberately minimal HTTP/1.1 layer.
//!
//! `xp serve` needs exactly four verbs of HTTP: read one request
//! (line + headers + `Content-Length` body), write one response, close
//! the connection. No keep-alive, no chunked encoding, no TLS — every
//! connection is one request/response exchange with hard size limits,
//! which keeps the parser small enough to audit and leaves nothing for
//! a malformed peer to wedge.

use std::io::{self, BufRead as _, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on one request (line + headers + body).
pub const MAX_REQUEST_BYTES: u64 = 8 * 1024 * 1024;
/// Hard cap on header count (defense against header floods).
const MAX_HEADERS: usize = 100;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request: method, target path, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The origin-form target (`/status/abc123…`), query string and
    /// all — the service routes on the raw path.
    pub target: String,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// Reads one request from the stream, enforcing the size caps and the
/// per-connection timeout.
///
/// # Errors
///
/// Returns a human-readable message for malformed request lines,
/// missing/oversized bodies, or socket failures; the caller answers
/// with `400` and closes.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(|e| format!("set_write_timeout: {e}"))?;
    let mut reader = BufReader::new(Read::take(&mut *stream, MAX_REQUEST_BYTES));

    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| "request line has no target".to_string())?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err("not an HTTP/1.x request".to_string()),
    }

    let mut content_length: usize = 0;
    for _ in 0..MAX_HEADERS {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("reading header: {e}"))?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("reading {content_length}-byte body: {e}"))?;
            return Ok(Request {
                method,
                target,
                body,
            });
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n as u64 <= MAX_REQUEST_BYTES)
                    .ok_or_else(|| format!("bad content-length {:?}", value.trim()))?;
            }
        } else {
            return Err(format!("malformed header line {line:?}"));
        }
    }
    Err(format!("more than {MAX_HEADERS} headers"))
}

/// Writes one complete response and flushes. `Connection: close` is
/// always set — the protocol here is strictly one exchange per
/// connection.
///
/// # Errors
///
/// Propagates socket write failures (the caller just drops the
/// connection).
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Escapes a string for embedding inside a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips one raw request through a real socket pair.
    fn parse_raw(raw: &[u8]) -> Result<Request, String> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut client = TcpStream::connect(addr).expect("connect");
                client.write_all(&raw).expect("send");
                client.flush().expect("flush");
                // Half-close so a parser waiting on more body bytes
                // sees EOF instead of a timeout, then drain the reply.
                let _ = client.shutdown(std::net::Shutdown::Write);
                let mut sink = Vec::new();
                let _ = client.read_to_end(&mut sink);
            });
            let (mut conn, _) = listener.accept().expect("accept");
            let parsed = read_request(&mut conn);
            let _ = respond(&mut conn, 200, "OK", "text/plain", b"done");
            parsed
        })
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_raw(b"POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\nname demo")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/submit");
        assert_eq!(req.body, b"name demo");
    }

    #[test]
    fn parses_bodyless_get() {
        let req = parse_raw(b"GET /stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_bad_lengths() {
        assert!(parse_raw(b"nonsense\r\n\r\n").is_err());
        assert!(parse_raw(b"GET / HTTP/1.1\r\nContent-Length: zap\r\n\r\n").is_err());
        assert!(parse_raw(b"GET / HTTP/1.1\r\nContent-Length: 99999999999999\r\n\r\n").is_err());
        assert!(parse_raw(b"GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab").is_err());
    }

    #[test]
    fn json_escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
