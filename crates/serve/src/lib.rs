//! Distributed sweep infrastructure for the `xp` driver.
//!
//! This crate is **infrastructure, not simulation**: it never touches
//! simulated time, the event order, or any per-run state. Everything a
//! cell computes happens inside an `xp run-cell` child process driven
//! entirely by a spec text on stdin — the spec format's exact
//! parser/printer inverses make a spec a complete serialization
//! boundary, so a cell is a pure function of its canonical spec text
//! and re-running it is byte-identical. That purity is what the three
//! layers here exploit:
//!
//! * [`hash`] — a hand-rolled FNV-1a content hash over the canonical
//!   spec printing, keying every cell;
//! * [`cache`] — a content-addressed result store under
//!   `results/cache/<key>/` with atomic rename-publish, so an
//!   unchanged spec is a cache hit and any field change is a miss;
//! * [`exec`] — a bounded multi-process job pool (std-only
//!   `Command` + pipes) with retry-on-crash: a re-run is
//!   byte-identical by determinism, so retries are always safe;
//! * [`http`] + [`service`] — a long-running results service
//!   (`xp serve`): a hand-rolled HTTP/1.1 server over `TcpListener`
//!   with a bounded submission queue feeding the same executor, and
//!   endpoints to submit specs, poll job status (surfacing the
//!   child's `--progress` telemetry heartbeat), and fetch finished
//!   CSVs / telemetry reports.
//!
//! The crate is dependency-free (std only) and knows nothing about the
//! spec format itself: the caller (the `xp` binary in `ftgcs-bench`)
//! supplies canonical spec text and cache keys, keeping the dependency
//! graph acyclic. Unlike the simulation crates, this one is an allowed
//! thread-spawn and print site under `ftgcs-lint` — its threads manage
//! OS processes and sockets, never simulated events.

#![warn(missing_docs)]
// Unsafety discipline (enforced by `ftgcs-lint`): infrastructure code
// has no business with raw pointers; the one sanctioned unsafe region
// in the workspace is `ftgcs-sim`'s parallel executor.
#![deny(unsafe_code)]

pub mod cache;
pub mod exec;
pub mod hash;
pub mod http;
pub mod service;

pub use cache::ResultStore;
pub use exec::{run_indexed, CellOutcome, CellRunner};
pub use hash::CellKey;
pub use service::{serve, CellRequest, ServeConfig};
