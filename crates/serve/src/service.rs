//! The long-running results service behind `xp serve`.
//!
//! Typed submissions in, verified results out: a client `POST`s a spec
//! text to `/submit`, the service canonicalizes it (via a caller-
//! supplied [`Canonicalizer`] — this crate knows nothing about the
//! spec grammar), keys it by content hash, and either answers straight
//! from the [`ResultStore`] or enqueues it on a **bounded** submission
//! queue feeding the same multi-process executor `xp sweep --parallel`
//! uses. Job progress surfaces the child's `--progress` telemetry
//! heartbeat (`ftgcs-telemetry-v1` events/sec line); finished CSVs and
//! telemetry reports are fetched from the cache entry.
//!
//! Endpoints (one request per connection, `Connection: close`):
//!
//! | method & path              | effect                                        |
//! |----------------------------|-----------------------------------------------|
//! | `POST /submit`             | body = spec text → job id (hash), state       |
//! | `GET /status/<job>`        | state, attempts, heartbeat                    |
//! | `GET /result/<job>`        | list of artifact names                        |
//! | `GET /result/<job>/<file>` | one artifact (CSV / telemetry JSON / stdout)  |
//! | `GET /jobs`                | all jobs this process has seen                |
//! | `GET /stats`               | submissions, cache hits, cells spawned        |
//! | `POST /shutdown`           | graceful stop (drain running cells, exit)     |

use std::collections::{BTreeMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

use crate::cache::ResultStore;
use crate::exec::CellRunner;
use crate::hash::CellKey;
use crate::http::{json_escape, read_request, respond, Request};

/// A canonicalized submission, produced by the [`Canonicalizer`] the
/// `xp` driver supplies (it owns the spec grammar; this crate does
/// not).
#[derive(Debug, Clone)]
pub struct CellRequest {
    /// Content-hash identity: the job id and cache key.
    pub key: CellKey,
    /// Scenario name (display only).
    pub name: String,
    /// Canonical spec text — fed verbatim to the `run-cell` child, so
    /// two submissions differing only in formatting share one cell.
    pub canonical: String,
    /// Analysis name, if the spec dispatches into one.
    pub analysis: Option<String>,
}

/// Parses and canonicalizes a raw submitted spec text.
pub type Canonicalizer = dyn Fn(&str) -> Result<CellRequest, String> + Sync;

/// Configuration for one `serve` invocation.
#[derive(Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port; the bound
    /// address is printed on stdout as `xp serve: listening on …`).
    pub addr: String,
    /// Executor worker threads (concurrent cells).
    pub jobs: usize,
    /// Maximum queued (not yet running) submissions; beyond it,
    /// `/submit` answers `503`.
    pub queue_capacity: usize,
    /// The content-addressed result store.
    pub store: ResultStore,
    /// How to spawn `run-cell` children.
    pub runner: CellRunner,
}

/// Lifecycle of one submitted cell.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed(String),
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Everything the service remembers about one job.
#[derive(Debug, Clone)]
struct Job {
    name: String,
    state: JobState,
    /// Child processes this job cost (0 for pure cache hits).
    attempts: u32,
    /// Last stderr line of the running child — the telemetry
    /// heartbeat when the cell runs with `--progress`.
    heartbeat: String,
    /// Completed without spawning anything (served from the store).
    cached: bool,
}

/// Monotonic service counters, exposed at `/stats`.
#[derive(Debug, Default, Clone)]
struct Stats {
    submissions: u64,
    cache_hits: u64,
    cells_spawned: u64,
    completed: u64,
}

/// One queue entry: what the worker needs to run the cell.
struct QueuedCell {
    key: CellKey,
    canonical: String,
}

struct Service<'a> {
    store: ResultStore,
    runner: CellRunner,
    queue_capacity: usize,
    jobs: Mutex<BTreeMap<String, Job>>,
    queue: Mutex<VecDeque<QueuedCell>>,
    queue_ready: Condvar,
    stats: Mutex<Stats>,
    shutdown: AtomicBool,
    canonicalize: &'a Canonicalizer,
}

/// Binds, prints the bound address on stdout (`xp serve: listening on
/// http://<addr>` — scripts and tests parse this line to discover an
/// ephemeral port), and serves until `POST /shutdown`.
///
/// # Errors
///
/// Returns a message if the listener cannot bind.
pub fn serve(config: ServeConfig, canonicalize: &Canonicalizer) -> Result<(), String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    println!("xp serve: listening on http://{addr}");
    println!(
        "xp serve: {} executor job(s), cache at {}",
        config.jobs.max(1),
        config.store.root().display()
    );

    let service = Service {
        store: config.store,
        runner: config.runner,
        queue_capacity: config.queue_capacity.max(1),
        jobs: Mutex::new(BTreeMap::new()),
        queue: Mutex::new(VecDeque::new()),
        queue_ready: Condvar::new(),
        stats: Mutex::new(Stats::default()),
        shutdown: AtomicBool::new(false),
        canonicalize,
    };
    std::thread::scope(|s| {
        for _ in 0..config.jobs.max(1) {
            s.spawn(|| service.worker_loop());
        }
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            if !service.handle(&mut stream) {
                break;
            }
        }
        service.shutdown.store(true, Ordering::SeqCst);
        service.queue_ready.notify_all();
    });
    println!("xp serve: shut down");
    Ok(())
}

impl Service<'_> {
    /// Executor worker: drain the queue until shutdown.
    fn worker_loop(&self) {
        loop {
            let cell = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(cell) = queue.pop_front() {
                        break cell;
                    }
                    queue = self.queue_ready.wait(queue).expect("queue condvar");
                }
            };
            self.execute(&cell);
        }
    }

    /// Runs one queued cell through a `run-cell --dir <staging>` child
    /// and publishes its artifacts.
    fn execute(&self, cell: &QueuedCell) {
        let hex = cell.key.hex();
        self.update_job(&hex, |job| job.state = JobState::Running);

        let staging = match self.store.begin(&cell.key) {
            Ok(staging) => staging,
            Err(e) => {
                self.finish_job(&hex, JobState::Failed(format!("cache staging: {e}")), 0);
                return;
            }
        };
        let dir = staging.dir().display().to_string();
        let heartbeat = |line: &str| {
            if !line.is_empty() {
                self.update_job(&hex, |job| job.heartbeat = line.to_string());
            }
        };
        match self
            .runner
            .run_cell(&["--dir", &dir], &cell.canonical, Some(&heartbeat))
        {
            Ok(outcome) => {
                let staged_ok = std::fs::write(staging.dir().join("stdout.txt"), &outcome.stdout)
                    .and_then(|()| staging.publish().map(|_| ()));
                match staged_ok {
                    Ok(()) => self.finish_job(&hex, JobState::Done, outcome.attempts),
                    Err(e) => self.finish_job(
                        &hex,
                        JobState::Failed(format!("publishing results: {e}")),
                        outcome.attempts,
                    ),
                }
            }
            Err(e) => {
                staging.discard();
                // Every allowed attempt spawned a process before the
                // cell was given up on.
                self.finish_job(&hex, JobState::Failed(e), self.runner.retries + 1);
            }
        }
    }

    fn update_job(&self, hex: &str, f: impl FnOnce(&mut Job)) {
        if let Some(job) = self.jobs.lock().expect("jobs lock").get_mut(hex) {
            f(job);
        }
    }

    fn finish_job(&self, hex: &str, state: JobState, attempts: u32) {
        let done = state == JobState::Done;
        self.update_job(hex, |job| {
            job.state = state;
            job.attempts = attempts;
        });
        let mut stats = self.stats.lock().expect("stats lock");
        stats.cells_spawned += u64::from(attempts);
        if done {
            stats.completed += 1;
        }
    }

    /// Handles one connection; returns `false` on `/shutdown`.
    fn handle(&self, stream: &mut TcpStream) -> bool {
        let request = match read_request(stream) {
            Ok(request) => request,
            Err(e) => {
                let body = format!("{{\"error\": \"{}\"}}\n", json_escape(&e));
                let _ = respond(
                    stream,
                    400,
                    "Bad Request",
                    "application/json",
                    body.as_bytes(),
                );
                return true;
            }
        };
        let path = request.target.split('?').next().unwrap_or("").to_string();
        let outcome: Result<(), String> = match (request.method.as_str(), path.as_str()) {
            ("POST", "/submit") => self.submit(stream, &request),
            ("GET", "/jobs") => self.list_jobs(stream),
            ("GET", "/stats") => self.send_stats(stream),
            ("GET", "/") => respond(stream, 200, "OK", "text/plain", INDEX.as_bytes())
                .map_err(|e| e.to_string()),
            ("POST", "/shutdown") => {
                let _ = respond(stream, 200, "OK", "application/json", b"{\"ok\": true}\n");
                return false;
            }
            ("GET", _) if path.starts_with("/status/") => {
                self.status(stream, path.trim_start_matches("/status/"))
            }
            ("GET", _) if path.starts_with("/result/") => {
                self.result(stream, path.trim_start_matches("/result/"))
            }
            _ => respond(
                stream,
                404,
                "Not Found",
                "application/json",
                b"{\"error\": \"no such endpoint (GET / for the index)\"}\n",
            )
            .map_err(|e| e.to_string()),
        };
        // A client that hung up mid-response is its own problem; the
        // service just moves on to the next connection.
        let _ = outcome;
        true
    }

    /// `POST /submit`: canonicalize → cache lookup → enqueue.
    fn submit(&self, stream: &mut TcpStream, request: &Request) -> Result<(), String> {
        self.stats.lock().expect("stats lock").submissions += 1;
        let text = match std::str::from_utf8(&request.body) {
            Ok(text) => text,
            Err(_) => return self.error(stream, 400, "spec body is not UTF-8"),
        };
        let cell = match (self.canonicalize)(text) {
            Ok(cell) => cell,
            Err(e) => return self.error(stream, 400, &e),
        };
        let hex = cell.key.hex();

        let mut jobs = self.jobs.lock().expect("jobs lock");
        if let Some(job) = jobs.get_mut(&hex) {
            // Known job: answer with its current state. A failed job
            // is given another chance (determinism makes that safe);
            // done/queued/running jobs spawn nothing new.
            let requeue = matches!(job.state, JobState::Failed(_));
            if requeue {
                job.state = JobState::Queued;
                job.heartbeat.clear();
            } else if job.state == JobState::Done {
                self.stats.lock().expect("stats lock").cache_hits += 1;
            }
            let body = job_json(&hex, job);
            drop(jobs);
            if requeue {
                self.enqueue(cell);
            }
            return respond(stream, 200, "OK", "application/json", body.as_bytes())
                .map_err(|e| e.to_string());
        }
        if self.store.is_done(&cell.key) {
            // Content-hash cache hit: the spec was computed in some
            // earlier run (even an earlier server process). No child
            // is spawned — this is the acceptance path the smoke test
            // pins by watching `cells_spawned`.
            let job = Job {
                name: cell.name.clone(),
                state: JobState::Done,
                attempts: 0,
                heartbeat: String::new(),
                cached: true,
            };
            let body = job_json(&hex, &job);
            jobs.insert(hex, job);
            drop(jobs);
            self.stats.lock().expect("stats lock").cache_hits += 1;
            return respond(stream, 200, "OK", "application/json", body.as_bytes())
                .map_err(|e| e.to_string());
        }
        if self.queue.lock().expect("queue lock").len() >= self.queue_capacity {
            drop(jobs);
            return self.error(stream, 503, "submission queue is full; retry later");
        }
        let job = Job {
            name: cell.name.clone(),
            state: JobState::Queued,
            attempts: 0,
            heartbeat: String::new(),
            cached: false,
        };
        let body = job_json(&hex, &job);
        jobs.insert(hex, job);
        drop(jobs);
        self.enqueue(cell);
        respond(stream, 202, "Accepted", "application/json", body.as_bytes())
            .map_err(|e| e.to_string())
    }

    fn enqueue(&self, cell: CellRequest) {
        self.queue
            .lock()
            .expect("queue lock")
            .push_back(QueuedCell {
                key: cell.key,
                canonical: cell.canonical,
            });
        self.queue_ready.notify_one();
    }

    /// `GET /status/<job>`.
    fn status(&self, stream: &mut TcpStream, hex: &str) -> Result<(), String> {
        let Some(key) = CellKey::parse_hex(hex) else {
            return self.error(stream, 400, "job id must be 16 hex digits");
        };
        let jobs = self.jobs.lock().expect("jobs lock");
        if let Some(job) = jobs.get(hex) {
            let body = job_json(hex, job);
            drop(jobs);
            return respond(stream, 200, "OK", "application/json", body.as_bytes())
                .map_err(|e| e.to_string());
        }
        drop(jobs);
        if self.store.is_done(&key) {
            // Completed by an earlier server process over the same
            // cache: adopt it.
            let job = Job {
                name: "(cached)".to_string(),
                state: JobState::Done,
                attempts: 0,
                heartbeat: String::new(),
                cached: true,
            };
            let body = job_json(hex, &job);
            self.jobs
                .lock()
                .expect("jobs lock")
                .insert(hex.to_string(), job);
            return respond(stream, 200, "OK", "application/json", body.as_bytes())
                .map_err(|e| e.to_string());
        }
        self.error(stream, 404, "unknown job")
    }

    /// `GET /result/<job>[/<file>]`.
    fn result(&self, stream: &mut TcpStream, rest: &str) -> Result<(), String> {
        let (hex, file) = match rest.split_once('/') {
            Some((hex, file)) => (hex, Some(file)),
            None => (rest, None),
        };
        let Some(key) = CellKey::parse_hex(hex) else {
            return self.error(stream, 400, "job id must be 16 hex digits");
        };
        if !self.store.is_done(&key) {
            let state = self
                .jobs
                .lock()
                .expect("jobs lock")
                .get(hex)
                .map(|job| job.state.name().to_string());
            return match state {
                Some(state) => self.error(stream, 409, &format!("job is {state}, not done")),
                None => self.error(stream, 404, "unknown job"),
            };
        }
        let Some(file) = file else {
            let names = self.store.artifacts(&key);
            let list = names
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect::<Vec<_>>()
                .join(", ");
            let body = format!("{{\"job\": \"{hex}\", \"artifacts\": [{list}]}}\n");
            return respond(stream, 200, "OK", "application/json", body.as_bytes())
                .map_err(|e| e.to_string());
        };
        match self.store.read(&key, file) {
            Ok(bytes) => {
                let content_type = match file.rsplit_once('.').map(|(_, ext)| ext) {
                    Some("json") => "application/json",
                    Some("csv") => "text/csv",
                    _ => "text/plain",
                };
                respond(stream, 200, "OK", content_type, &bytes).map_err(|e| e.to_string())
            }
            Err(e) => self.error(stream, 404, &format!("no artifact {file:?}: {e}")),
        }
    }

    /// `GET /jobs`.
    fn list_jobs(&self, stream: &mut TcpStream) -> Result<(), String> {
        let jobs = self.jobs.lock().expect("jobs lock");
        let entries = jobs
            .iter()
            .map(|(hex, job)| job_json(hex, job))
            .collect::<Vec<_>>()
            .join(", ");
        drop(jobs);
        let body = format!("{{\"jobs\": [{entries}]}}\n");
        respond(stream, 200, "OK", "application/json", body.as_bytes()).map_err(|e| e.to_string())
    }

    /// `GET /stats`.
    fn send_stats(&self, stream: &mut TcpStream) -> Result<(), String> {
        let stats = self.stats.lock().expect("stats lock").clone();
        let body = format!(
            "{{\"submissions\": {}, \"cache_hits\": {}, \"cells_spawned\": {}, \"completed\": {}}}\n",
            stats.submissions, stats.cache_hits, stats.cells_spawned, stats.completed
        );
        respond(stream, 200, "OK", "application/json", body.as_bytes()).map_err(|e| e.to_string())
    }

    fn error(&self, stream: &mut TcpStream, status: u16, msg: &str) -> Result<(), String> {
        let reason = match status {
            400 => "Bad Request",
            404 => "Not Found",
            409 => "Conflict",
            503 => "Service Unavailable",
            _ => "Error",
        };
        let body = format!("{{\"error\": \"{}\"}}\n", json_escape(msg));
        respond(stream, status, reason, "application/json", body.as_bytes())
            .map_err(|e| e.to_string())
    }
}

/// Renders one job as a JSON object.
fn job_json(hex: &str, job: &Job) -> String {
    let mut out = format!(
        "{{\"job\": \"{hex}\", \"name\": \"{}\", \"state\": \"{}\", \"cached\": {}, \"attempts\": {}",
        json_escape(&job.name),
        job.state.name(),
        job.cached,
        job.attempts
    );
    if !job.heartbeat.is_empty() {
        out.push_str(&format!(
            ", \"heartbeat\": \"{}\"",
            json_escape(&job.heartbeat)
        ));
    }
    if let JobState::Failed(e) = &job.state {
        out.push_str(&format!(", \"error\": \"{}\"", json_escape(e)));
    }
    out.push('}');
    out
}

/// `GET /` index text.
const INDEX: &str = "ftgcs results service (xp serve)

  POST /submit                body = spec text -> {job, state, cached}
  GET  /status/<job>          job state + telemetry heartbeat
  GET  /result/<job>          artifact listing
  GET  /result/<job>/<file>   one artifact (CSV, telemetry.json, stdout.txt)
  GET  /jobs                  every job this process has seen
  GET  /stats                 submissions / cache_hits / cells_spawned
  POST /shutdown              graceful stop

Jobs are keyed by an FNV-1a content hash of the canonical spec
printing: resubmitting an unchanged spec is a cache hit and spawns no
cell process.
";
